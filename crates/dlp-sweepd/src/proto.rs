//! Wire protocol for the sweep daemon.
//!
//! Every message is one *frame*: a `u32` little-endian payload length
//! (capped at [`MAX_FRAME_LEN`]) followed by the payload. A payload
//! starts with a fixed three-byte prologue — [`MAGIC`], [`VERSION`],
//! message type — then a type-specific body:
//!
//! ```text
//! Ping        0x01  (empty body)
//! Sweep       0x02  u16 LE abbr_len | abbr utf-8 | u64 LE deadline_ms
//!                   (0 = unlimited) | encoded ExperimentConfig
//! Pong        0x80  (empty body)
//! SweepResult 0x81  encoded AppRun (persist::encode_run bytes)
//! Error       0xFF  u8 error code | detail utf-8
//! ```
//!
//! Version 2 added the `deadline_ms` field: the deadline is carried in
//! every request frame, so one daemon process can serve jobs with
//! different deadlines (v1 daemons read `DLP_JOB_DEADLINE_MS` once at
//! startup, pinning every job to one process-wide value). A v1 peer is
//! answered with a typed [`ErrorCode::VersionSkew`], never guessed at.
//!
//! The config and run bodies reuse the `dlp_bench::persist` codec, so
//! the daemon serves exactly the bytes the on-disk store holds and a
//! client round-trip is covered by the same codec tests. Anything the
//! decoder cannot account for byte-for-byte is rejected as malformed —
//! the daemon never guesses at a partially valid frame.

use std::io::{self, Read, Write};

/// First payload byte of every frame.
pub const MAGIC: u8 = 0xD5;
/// Protocol generation; bumped on any incompatible frame change
/// (v2: sweep requests carry a per-job `deadline_ms`).
pub const VERSION: u8 = 2;
/// Upper bound on a frame payload — far above any encoded run, so an
/// oversized length prefix means a corrupt or hostile peer.
pub const MAX_FRAME_LEN: u32 = 16 * 1024 * 1024;

/// Message type byte: request to check liveness.
pub const TYPE_PING: u8 = 0x01;
/// Message type byte: request to run (or serve from store) one job.
pub const TYPE_SWEEP: u8 = 0x02;
/// Message type byte: liveness reply.
pub const TYPE_PONG: u8 = 0x80;
/// Message type byte: successful sweep reply carrying an encoded run.
pub const TYPE_SWEEP_RESULT: u8 = 0x81;
/// Message type byte: typed error reply.
pub const TYPE_ERROR: u8 = 0xFF;

/// Why the daemon rejected a request — mirrored on the wire as one
/// byte so clients can react without parsing the detail string.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum ErrorCode {
    /// The frame could not be decoded (bad magic, truncated body,
    /// oversized length, trailing bytes, unknown type).
    MalformedFrame = 1,
    /// The peer speaks a different protocol generation.
    VersionSkew = 2,
    /// The daemon's result store failed to open; sweeps are refused
    /// rather than silently recomputed without persistence.
    StorePoisoned = 3,
    /// The simulation itself failed after the harness's retries.
    JobFailed = 4,
}

impl ErrorCode {
    /// The on-wire byte.
    pub fn as_u8(self) -> u8 {
        self as u8
    }

    /// Decode the on-wire byte.
    pub fn from_u8(b: u8) -> Option<Self> {
        match b {
            1 => Some(ErrorCode::MalformedFrame),
            2 => Some(ErrorCode::VersionSkew),
            3 => Some(ErrorCode::StorePoisoned),
            4 => Some(ErrorCode::JobFailed),
            _ => None,
        }
    }
}

impl std::fmt::Display for ErrorCode {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        let s = match self {
            ErrorCode::MalformedFrame => "malformed-frame",
            ErrorCode::VersionSkew => "version-skew",
            ErrorCode::StorePoisoned => "store-poisoned",
            ErrorCode::JobFailed => "job-failed",
        };
        f.write_str(s)
    }
}

/// A decoded client request.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Request {
    /// Liveness check.
    Ping,
    /// Run one job: the workload abbreviation plus a
    /// `persist::encode_config` image of its [`ExperimentConfig`].
    ///
    /// [`ExperimentConfig`]: dlp_bench::ExperimentConfig
    Sweep {
        /// Workload abbreviation (registry key).
        abbr: String,
        /// Wall-clock bound for this job in milliseconds, 0 =
        /// unlimited. Carried per request so one daemon process can
        /// serve callers with different deadlines.
        deadline_ms: u64,
        /// `persist::encode_config` bytes; decoded by the daemon.
        config: Vec<u8>,
    },
}

/// A decoded daemon response.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Response {
    /// Liveness reply.
    Pong,
    /// The job's `persist::encode_run` bytes.
    SweepResult(Vec<u8>),
    /// Typed refusal or failure.
    Error {
        /// Machine-readable classification.
        code: ErrorCode,
        /// Human-readable context (never parsed by clients).
        detail: String,
    },
}

/// A protocol-level rejection produced while decoding a frame; maps
/// directly onto the [`Response::Error`] the daemon sends back.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct WireError {
    /// Classification echoed on the wire.
    pub code: ErrorCode,
    /// What exactly failed to parse.
    pub detail: String,
}

impl WireError {
    fn malformed(detail: impl Into<String>) -> Self {
        WireError { code: ErrorCode::MalformedFrame, detail: detail.into() }
    }
}

impl std::fmt::Display for WireError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "{}: {}", self.code, self.detail)
    }
}

/// Read one length-prefixed frame payload. Returns `Ok(None)` on a
/// clean EOF at a frame boundary (the peer hung up between requests);
/// an EOF inside a frame is an error.
pub fn read_frame(r: &mut impl Read) -> io::Result<Option<Vec<u8>>> {
    let mut len_buf = [0u8; 4];
    match r.read_exact(&mut len_buf) {
        Ok(()) => {}
        Err(e) if e.kind() == io::ErrorKind::UnexpectedEof => return Ok(None),
        Err(e) => return Err(e),
    }
    let len = u32::from_le_bytes(len_buf);
    if len > MAX_FRAME_LEN {
        return Err(io::Error::new(
            io::ErrorKind::InvalidData,
            format!("frame length {len} exceeds cap {MAX_FRAME_LEN}"),
        ));
    }
    let mut payload = vec![0u8; len as usize];
    r.read_exact(&mut payload)?;
    Ok(Some(payload))
}

/// Write one length-prefixed frame.
pub fn write_frame(w: &mut impl Write, payload: &[u8]) -> io::Result<()> {
    let len = u32::try_from(payload.len())
        .ok()
        .filter(|l| *l <= MAX_FRAME_LEN)
        .ok_or_else(|| {
            io::Error::new(io::ErrorKind::InvalidInput, "frame payload exceeds cap")
        })?;
    w.write_all(&len.to_le_bytes())?;
    w.write_all(payload)?;
    w.flush()
}

/// Check the three-byte prologue and return (type, body).
fn split_prologue(payload: &[u8]) -> Result<(u8, &[u8]), WireError> {
    if payload.len() < 3 {
        return Err(WireError::malformed(format!(
            "payload too short: {} bytes",
            payload.len()
        )));
    }
    if payload[0] != MAGIC {
        return Err(WireError::malformed(format!(
            "bad magic {:#04x} (want {MAGIC:#04x})",
            payload[0]
        )));
    }
    if payload[1] != VERSION {
        return Err(WireError {
            code: ErrorCode::VersionSkew,
            detail: format!("peer version {} (daemon speaks {VERSION})", payload[1]),
        });
    }
    Ok((payload[2], &payload[3..]))
}

fn prologue(msg_type: u8) -> Vec<u8> {
    vec![MAGIC, VERSION, msg_type]
}

/// Decode a request payload.
pub fn decode_request(payload: &[u8]) -> Result<Request, WireError> {
    let (msg_type, body) = split_prologue(payload)?;
    match msg_type {
        TYPE_PING => {
            if !body.is_empty() {
                return Err(WireError::malformed("ping carries a body"));
            }
            Ok(Request::Ping)
        }
        TYPE_SWEEP => {
            if body.len() < 2 {
                return Err(WireError::malformed("sweep body shorter than abbr length"));
            }
            let abbr_len = u16::from_le_bytes([body[0], body[1]]) as usize;
            let rest = &body[2..];
            if rest.len() < abbr_len {
                return Err(WireError::malformed("sweep abbr truncated"));
            }
            let abbr = std::str::from_utf8(&rest[..abbr_len])
                .map_err(|_| WireError::malformed("sweep abbr is not utf-8"))?
                .to_string();
            let rest = &rest[abbr_len..];
            if rest.len() < 8 {
                return Err(WireError::malformed("sweep deadline truncated"));
            }
            let deadline_ms = u64::from_le_bytes(
                rest[..8].try_into().expect("slice length checked above"),
            );
            Ok(Request::Sweep { abbr, deadline_ms, config: rest[8..].to_vec() })
        }
        other => Err(WireError::malformed(format!("unknown request type {other:#04x}"))),
    }
}

/// Encode a request payload.
pub fn encode_request(req: &Request) -> Vec<u8> {
    match req {
        Request::Ping => prologue(TYPE_PING),
        Request::Sweep { abbr, deadline_ms, config } => {
            let mut p = prologue(TYPE_SWEEP);
            let abbr_len = u16::try_from(abbr.len()).expect("abbr length fits u16");
            p.extend_from_slice(&abbr_len.to_le_bytes());
            p.extend_from_slice(abbr.as_bytes());
            p.extend_from_slice(&deadline_ms.to_le_bytes());
            p.extend_from_slice(config);
            p
        }
    }
}

/// Decode a response payload.
pub fn decode_response(payload: &[u8]) -> Result<Response, WireError> {
    let (msg_type, body) = split_prologue(payload)?;
    match msg_type {
        TYPE_PONG => {
            if !body.is_empty() {
                return Err(WireError::malformed("pong carries a body"));
            }
            Ok(Response::Pong)
        }
        TYPE_SWEEP_RESULT => Ok(Response::SweepResult(body.to_vec())),
        TYPE_ERROR => {
            if body.is_empty() {
                return Err(WireError::malformed("error reply missing code"));
            }
            let code = ErrorCode::from_u8(body[0]).ok_or_else(|| {
                WireError::malformed(format!("unknown error code {}", body[0]))
            })?;
            let detail = String::from_utf8_lossy(&body[1..]).into_owned();
            Ok(Response::Error { code, detail })
        }
        other => Err(WireError::malformed(format!("unknown response type {other:#04x}"))),
    }
}

/// Encode a response payload.
pub fn encode_response(resp: &Response) -> Vec<u8> {
    match resp {
        Response::Pong => prologue(TYPE_PONG),
        Response::SweepResult(run) => {
            let mut p = prologue(TYPE_SWEEP_RESULT);
            p.extend_from_slice(run);
            p
        }
        Response::Error { code, detail } => {
            let mut p = prologue(TYPE_ERROR);
            p.push(code.as_u8());
            p.extend_from_slice(detail.as_bytes());
            p
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn request_roundtrips() {
        for req in [
            Request::Ping,
            Request::Sweep { abbr: "BFS".into(), deadline_ms: 0, config: vec![1, 2, 3, 4] },
            Request::Sweep { abbr: "KM".into(), deadline_ms: 30_000, config: vec![7; 9] },
            Request::Sweep { abbr: String::new(), deadline_ms: u64::MAX, config: Vec::new() },
        ] {
            assert_eq!(decode_request(&encode_request(&req)), Ok(req));
        }
    }

    #[test]
    fn response_roundtrips() {
        for resp in [
            Response::Pong,
            Response::SweepResult(vec![9, 8, 7]),
            Response::Error { code: ErrorCode::JobFailed, detail: "KM: hang".into() },
        ] {
            assert_eq!(decode_response(&encode_response(&resp)), Ok(resp));
        }
    }

    #[test]
    fn bad_magic_and_version_are_typed() {
        let mut p = encode_request(&Request::Ping);
        p[0] = 0x00;
        assert_eq!(decode_request(&p).unwrap_err().code, ErrorCode::MalformedFrame);

        let mut p = encode_request(&Request::Ping);
        p[1] = VERSION + 1;
        assert_eq!(decode_request(&p).unwrap_err().code, ErrorCode::VersionSkew);
    }

    #[test]
    fn truncated_sweep_is_malformed() {
        let full = encode_request(&Request::Sweep {
            abbr: "BFS".into(),
            deadline_ms: 12_345,
            config: vec![7; 8],
        });
        // prologue(3) + abbr_len(2) + abbr(3) + deadline(8): any cut
        // inside that prefix must be rejected, not misread as a shorter
        // request — a cut inside the deadline must never decode with a
        // garbage deadline. Cuts into the config blob decode here (the
        // blob is the rest of the body) and are rejected by the persist
        // codec instead.
        for cut in 0..3 + 2 + 3 + 8 {
            assert!(
                decode_request(&full[..cut]).is_err(),
                "prefix of {cut} bytes decoded"
            );
        }
    }

    #[test]
    fn v1_sweep_frame_is_rejected_as_version_skew() {
        // A v1 peer's sweep (no deadline field) must get a typed
        // version-skew refusal, not a misparse of its config bytes as a
        // deadline.
        let mut p = vec![MAGIC, 1, TYPE_SWEEP];
        p.extend_from_slice(&3u16.to_le_bytes());
        p.extend_from_slice(b"BFS");
        p.extend_from_slice(&[0xAB; 16]);
        let err = decode_request(&p).unwrap_err();
        assert_eq!(err.code, ErrorCode::VersionSkew, "{err}");
    }

    #[test]
    fn frame_io_roundtrips_and_rejects_oversize() {
        let mut buf = Vec::new();
        write_frame(&mut buf, b"hello").unwrap();
        let mut r = &buf[..];
        assert_eq!(read_frame(&mut r).unwrap(), Some(b"hello".to_vec()));
        assert_eq!(read_frame(&mut r).unwrap(), None);

        // An oversized length prefix is an error, not an allocation.
        let bad = (MAX_FRAME_LEN + 1).to_le_bytes();
        assert!(read_frame(&mut &bad[..]).is_err());

        // EOF mid-frame is an error, not a clean shutdown.
        let mut torn = &buf[..buf.len() - 1];
        assert!(read_frame(&mut torn).is_err());
    }
}
