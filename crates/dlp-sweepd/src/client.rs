//! Client side of the sweep daemon protocol.

use crate::proto::{self, ErrorCode, Request, Response};
use dlp_bench::{AppRun, ExperimentConfig};
use std::io;
use std::os::unix::net::UnixStream;
use std::path::Path;

/// Why a client call failed.
#[derive(Debug)]
pub enum ClientError {
    /// Transport failure (connect, read, write).
    Io(io::Error),
    /// The daemon's reply did not decode, or was the wrong type for
    /// the request.
    Protocol(String),
    /// The daemon answered with a typed error frame.
    Daemon {
        /// The daemon's classification.
        code: ErrorCode,
        /// The daemon's human-readable context.
        detail: String,
    },
}

impl std::fmt::Display for ClientError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ClientError::Io(e) => write!(f, "io: {e}"),
            ClientError::Protocol(d) => write!(f, "protocol: {d}"),
            ClientError::Daemon { code, detail } => write!(f, "daemon {code}: {detail}"),
        }
    }
}

impl From<io::Error> for ClientError {
    fn from(e: io::Error) -> Self {
        ClientError::Io(e)
    }
}

/// A connected daemon client. One request is in flight at a time; the
/// connection is reused across calls.
pub struct Client {
    stream: UnixStream,
}

impl Client {
    /// Connect to a daemon listening on `path`.
    pub fn connect(path: &Path) -> Result<Self, ClientError> {
        Ok(Client { stream: UnixStream::connect(path)? })
    }

    /// Wrap an already-connected stream (tests use socket pairs).
    pub fn from_stream(stream: UnixStream) -> Self {
        Client { stream }
    }

    fn call(&mut self, req: &Request) -> Result<Response, ClientError> {
        proto::write_frame(&mut self.stream, &proto::encode_request(req))?;
        let payload = proto::read_frame(&mut self.stream)?
            .ok_or_else(|| ClientError::Protocol("daemon hung up".into()))?;
        proto::decode_response(&payload).map_err(|e| ClientError::Protocol(e.to_string()))
    }

    /// Liveness check.
    pub fn ping(&mut self) -> Result<(), ClientError> {
        match self.call(&Request::Ping)? {
            Response::Pong => Ok(()),
            Response::Error { code, detail } => Err(ClientError::Daemon { code, detail }),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }

    /// Run (or fetch from the daemon's store) one job and decode the
    /// resulting run.
    ///
    /// The job deadline is the *client's* `DLP_JOB_DEADLINE_MS`, read
    /// per call and shipped inside the request frame — the daemon
    /// never consults its own environment, so concurrent clients with
    /// different budgets coexist against one daemon process.
    pub fn sweep(&mut self, abbr: &str, cfg: &ExperimentConfig) -> Result<AppRun, ClientError> {
        let deadline_ms = std::env::var(dlp_bench::harness::JOB_DEADLINE_ENV)
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(0);
        self.sweep_with_deadline(abbr, cfg, deadline_ms)
    }

    /// [`Self::sweep`] with an explicit wall-clock budget in
    /// milliseconds (0 = unlimited) instead of the env fallback.
    pub fn sweep_with_deadline(
        &mut self,
        abbr: &str,
        cfg: &ExperimentConfig,
        deadline_ms: u64,
    ) -> Result<AppRun, ClientError> {
        let req = Request::Sweep {
            abbr: abbr.to_string(),
            deadline_ms,
            config: dlp_bench::persist::encode_config(cfg),
        };
        match self.call(&req)? {
            Response::SweepResult(bytes) => dlp_bench::persist::decode_run(abbr, &bytes)
                .ok_or_else(|| {
                    ClientError::Protocol(format!("sweep result for {abbr:?} does not decode"))
                }),
            Response::Error { code, detail } => Err(ClientError::Daemon { code, detail }),
            other => Err(ClientError::Protocol(format!("unexpected reply {other:?}"))),
        }
    }
}
