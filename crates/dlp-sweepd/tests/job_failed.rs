//! The job-failed wire path, in its own test binary: `DLP_FORCE_FAIL`
//! is read once per process by the harness, so this cannot share a
//! process with the tests that run real sweeps.

use dlp_bench::ExperimentConfig;
use dlp_sweepd::proto::ErrorCode;
use dlp_sweepd::server::Daemon;
use dlp_sweepd::{Client, ClientError};
use gpu_workloads::Scale;
use std::os::unix::net::UnixStream;

#[test]
fn forced_panic_surfaces_as_typed_job_failed() {
    // Must happen before any harness call in this process.
    std::env::set_var(dlp_bench::harness::FORCE_FAIL_ENV, "KM");

    let (ours, mut theirs) = UnixStream::pair().unwrap();
    let daemon = Daemon::default();
    std::thread::spawn(move || {
        let _ = daemon.serve_connection(&mut theirs);
    });
    let mut client = Client::from_stream(ours);

    let cfg = ExperimentConfig { scale: Scale::Tiny, ..ExperimentConfig::baseline() };
    match client.sweep("KM", &cfg) {
        Err(ClientError::Daemon { code: ErrorCode::JobFailed, detail }) => {
            // The harness's retry decision travels with the error: the
            // panic was classified retryable and retried to exhaustion.
            assert!(detail.contains("forced failure"), "{detail}");
            assert!(detail.contains("retried (3 attempts)"), "{detail}");
        }
        Err(e) => panic!("expected job-failed, got error {e}"),
        Ok(_) => panic!("expected job-failed, got a result"),
    }

    // The daemon survives the failed job: an unrelated app still runs.
    let run = client.sweep("BFS", &cfg).unwrap();
    assert!(run.stats.completed);
}
