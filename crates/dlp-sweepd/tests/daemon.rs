//! End-to-end daemon tests: real unix socket, typed error paths,
//! concurrent clients. The forced-failure (`job-failed`) path lives in
//! `job_failed.rs` — it needs a process-wide env hook of its own.

use dlp_bench::ExperimentConfig;
use dlp_sweepd::proto::{self, ErrorCode, Request, Response};
use dlp_sweepd::server::{bind, Daemon};
use dlp_sweepd::Client;
use gpu_workloads::Scale;
use std::os::unix::net::UnixStream;
use std::path::PathBuf;

fn tmp_socket(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!(
        "dlp-sweepd-test-{tag}-{}",
        std::process::id()
    ));
    std::fs::create_dir_all(&dir).unwrap();
    dir.join("sock")
}

/// Spawn an accept loop for `daemon` on a fresh socket; the thread is
/// detached (the test process exits with it).
fn spawn_daemon(tag: &str, daemon: Daemon) -> PathBuf {
    let path = tmp_socket(tag);
    let _ = std::fs::remove_file(&path);
    let listener = bind(&path).unwrap();
    std::thread::spawn(move || {
        let _ = dlp_sweepd::serve(listener, daemon);
    });
    path
}

fn tiny_cfg() -> ExperimentConfig {
    ExperimentConfig { scale: Scale::Tiny, ..ExperimentConfig::baseline() }
}

#[test]
fn ping_and_sweep_end_to_end() {
    let path = spawn_daemon("e2e", Daemon::default());
    let mut client = Client::connect(&path).unwrap();
    client.ping().unwrap();

    let cfg = tiny_cfg();
    let remote = client.sweep("BFS", &cfg).unwrap();
    let local = dlp_bench::run_app("BFS", cfg).unwrap();
    // Byte-level agreement, not just field spot-checks.
    assert_eq!(
        dlp_bench::persist::encode_run("BFS", &remote),
        dlp_bench::persist::encode_run("BFS", &local)
    );
    assert!(remote.stats.completed);

    // The connection is reusable: a second request on the same stream.
    client.ping().unwrap();
}

#[test]
fn malformed_then_skewed_then_valid_on_one_connection() {
    let (mut ours, mut theirs) = UnixStream::pair().unwrap();
    let daemon = Daemon::default();
    std::thread::spawn(move || {
        let _ = daemon.serve_connection(&mut theirs);
    });

    // Bad magic: typed malformed-frame error, connection stays up.
    proto::write_frame(&mut ours, &[0x00, proto::VERSION, proto::TYPE_PING]).unwrap();
    let resp = proto::decode_response(&proto::read_frame(&mut ours).unwrap().unwrap()).unwrap();
    assert!(matches!(resp, Response::Error { code: ErrorCode::MalformedFrame, .. }), "{resp:?}");

    // Wrong version: typed version-skew error.
    proto::write_frame(&mut ours, &[proto::MAGIC, proto::VERSION + 7, proto::TYPE_PING]).unwrap();
    let resp = proto::decode_response(&proto::read_frame(&mut ours).unwrap().unwrap()).unwrap();
    assert!(matches!(resp, Response::Error { code: ErrorCode::VersionSkew, .. }), "{resp:?}");

    // Framing stayed synchronized throughout: a valid ping still works.
    proto::write_frame(&mut ours, &proto::encode_request(&Request::Ping)).unwrap();
    let resp = proto::decode_response(&proto::read_frame(&mut ours).unwrap().unwrap()).unwrap();
    assert_eq!(resp, Response::Pong);
}

#[test]
fn oversized_frame_is_refused_then_closed() {
    use std::io::Write;
    let (mut ours, mut theirs) = UnixStream::pair().unwrap();
    let daemon = Daemon::default();
    let server = std::thread::spawn(move || daemon.serve_connection(&mut theirs));

    // A length prefix beyond the cap: the daemon answers with a typed
    // error (it cannot resync, so it closes afterwards) and never
    // allocates the claimed buffer.
    ours.write_all(&(proto::MAX_FRAME_LEN + 1).to_le_bytes()).unwrap();
    let resp = proto::decode_response(&proto::read_frame(&mut ours).unwrap().unwrap()).unwrap();
    assert!(matches!(resp, Response::Error { code: ErrorCode::MalformedFrame, .. }), "{resp:?}");
    assert_eq!(proto::read_frame(&mut ours).unwrap(), None, "connection should close");
    server.join().unwrap().unwrap();
}

#[test]
fn poisoned_store_refuses_sweeps_but_still_pings() {
    let (ours, mut theirs) = UnixStream::pair().unwrap();
    let daemon = Daemon { store_poison: Some("store open failed: disk on fire".into()) };
    std::thread::spawn(move || {
        let _ = daemon.serve_connection(&mut theirs);
    });
    let mut client = Client::from_stream(ours.try_clone().unwrap());
    client.ping().unwrap();
    match client.sweep("BFS", &tiny_cfg()) {
        Err(dlp_sweepd::ClientError::Daemon { code: ErrorCode::StorePoisoned, detail }) => {
            assert!(detail.contains("disk on fire"), "{detail}");
        }
        Err(e) => panic!("expected store-poisoned, got error {e}"),
        Ok(_) => panic!("expected store-poisoned, got a result"),
    }
    drop(ours);
}

#[test]
fn unknown_app_and_undecodable_config_are_malformed() {
    let daemon = Daemon::default();
    let resp = daemon.respond(Request::Sweep {
        abbr: "NOPE".into(),
        deadline_ms: 0,
        config: dlp_bench::persist::encode_config(&tiny_cfg()),
    });
    assert!(matches!(resp, Response::Error { code: ErrorCode::MalformedFrame, .. }), "{resp:?}");

    let resp = daemon.respond(Request::Sweep {
        abbr: "BFS".into(),
        deadline_ms: 0,
        config: vec![0xAB; 5],
    });
    assert!(matches!(resp, Response::Error { code: ErrorCode::MalformedFrame, .. }), "{resp:?}");
}

#[test]
fn per_request_deadlines_coexist_in_one_daemon_process() {
    let daemon = Daemon::default();
    // A config no other test in this binary uses (profiled CFD), so
    // the run cache cannot satisfy either request ahead of time.
    let cfg = ExperimentConfig { scale: Scale::Tiny, profile_rd: true, ..tiny_cfg() };
    let encoded = dlp_bench::persist::encode_config(&cfg);

    // Request 1: a 1 ms budget. The job must come back as a typed
    // deadline overrun, not a result.
    let resp = daemon.respond(Request::Sweep {
        abbr: "CFD".into(),
        deadline_ms: 1,
        config: encoded.clone(),
    });
    match resp {
        Response::Error { code: ErrorCode::JobFailed, detail } => {
            assert!(detail.contains("deadline"), "{detail}");
        }
        other => panic!("expected a deadline failure, got {other:?}"),
    }

    // Request 2, same daemon process, same job, unlimited budget:
    // succeeds. The v1 daemon read `DLP_JOB_DEADLINE_MS` through a
    // process-global cache, so whichever budget came first would have
    // silently applied to every job after it.
    let resp = daemon.respond(Request::Sweep {
        abbr: "CFD".into(),
        deadline_ms: 0,
        config: encoded,
    });
    assert!(matches!(resp, Response::SweepResult(_)), "{resp:?}");
}

#[test]
fn concurrent_clients_get_identical_results() {
    let path = spawn_daemon("conc", Daemon::default());
    let handles: Vec<_> = (0..4)
        .map(|_| {
            let path = path.clone();
            std::thread::spawn(move || {
                let mut client = Client::connect(&path).unwrap();
                client.ping().unwrap();
                let run = client.sweep("KM", &tiny_cfg()).unwrap();
                dlp_bench::persist::encode_run("KM", &run)
            })
        })
        .collect();
    let images: Vec<Vec<u8>> = handles.into_iter().map(|h| h.join().unwrap()).collect();
    assert!(images.windows(2).all(|w| w[0] == w[1]), "divergent results across clients");
}

#[test]
fn stale_socket_file_is_adopted() {
    let path = tmp_socket("stale");
    let _ = std::fs::remove_file(&path);
    // A dead daemon's leftover socket file: nothing is listening.
    drop(bind(&path).unwrap());
    assert!(path.exists());
    let listener = bind(&path).expect("stale socket should be replaced");
    drop(listener);
}
