//! # rd-tools — reuse-distance analysis for GPU cache streams
//!
//! Implements the paper's §3.1 measurement machinery:
//!
//! * **Reuse Distance (RD)** — for an access to line *L* in cache set
//!   *S*, the number of accesses to *S* since the previous access to
//!   *L* (Figure 2: the sequence `A0 A1 A2 A0` gives `A0` an RD of 3).
//!   RDs depend only on the address stream and the set mapping, never
//!   on associativity — which is what lets a victim tag array observe
//!   reuse beyond the cache's ways.
//! * **Reuse Distance Distribution (RDD)** — RDs bucketed into the
//!   paper's four ranges (1–4, 5–8, 9–64, >64), per application
//!   (Figure 3) or per static memory instruction (Figure 7).
//! * The **memory-access ratio** classifier (§3.2) separating Cache
//!   Sufficient from Cache Insufficient applications at 1 %.
//!
//! [`profiler::RdProfiler`] plugs into a `gpu-mem` L1D as an
//! [`gpu_mem::AccessObserver`], so distributions are computed from
//! exactly the stream the replacement policy sees.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod profiler;
pub mod ratio;
pub mod rd;
pub mod rdd;
pub mod walk;

pub use profiler::{RdProfiler, SharedRdd};
pub use ratio::{classify, AppClass, CS_CI_THRESHOLD};
pub use rd::SetRdTracker;
pub use rdd::{RdBucket, RddHistogram};
