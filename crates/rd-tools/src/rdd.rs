//! Reuse-distance distributions: the paper's four-bucket histograms.

use serde::{Deserialize, Serialize};

/// The paper's RD ranges (Figures 3 and 7).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum RdBucket {
    /// RD 1–4: captured by the baseline's 4 ways.
    R1to4,
    /// RD 5–8: captured by the 8-way (32 KB) configuration.
    R5to8,
    /// RD 9–64: beyond realistic associativity, within protection reach.
    R9to64,
    /// RD > 64: effectively streaming at L1 scale.
    ROver64,
}

impl RdBucket {
    /// Bucket an RD value.
    pub fn of(rd: u64) -> Self {
        match rd {
            0..=4 => RdBucket::R1to4,
            5..=8 => RdBucket::R5to8,
            9..=64 => RdBucket::R9to64,
            _ => RdBucket::ROver64,
        }
    }

    /// All buckets, plot order.
    pub const ALL: [RdBucket; 4] =
        [RdBucket::R1to4, RdBucket::R5to8, RdBucket::R9to64, RdBucket::ROver64];

    /// Axis label as the paper prints it.
    pub fn label(self) -> &'static str {
        match self {
            RdBucket::R1to4 => "RD 1~4",
            RdBucket::R5to8 => "RD 5~8",
            RdBucket::R9to64 => "RD 9~64",
            RdBucket::ROver64 => "RD >64",
        }
    }
}

/// A four-bucket RD histogram.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct RddHistogram {
    counts: [u64; 4],
    /// First-touch accesses (no RD — compulsory).
    pub compulsory: u64,
}

impl RddHistogram {
    /// Empty histogram.
    pub fn new() -> Self {
        Self::default()
    }

    /// Record one observed RD.
    pub fn record(&mut self, rd: u64) {
        self.counts[Self::slot(RdBucket::of(rd))] += 1;
    }

    /// Record a first touch.
    pub fn record_compulsory(&mut self) {
        self.compulsory += 1;
    }

    fn slot(b: RdBucket) -> usize {
        match b {
            RdBucket::R1to4 => 0,
            RdBucket::R5to8 => 1,
            RdBucket::R9to64 => 2,
            RdBucket::ROver64 => 3,
        }
    }

    /// Raw count in a bucket.
    pub fn count(&self, b: RdBucket) -> u64 {
        self.counts[Self::slot(b)]
    }

    /// Raw bucket counts in [`RdBucket::ALL`] order — for codecs that
    /// serialize histograms field-by-field (the vendored serde stack
    /// cannot derive real serialization).
    pub fn counts(&self) -> [u64; 4] {
        self.counts
    }

    /// Rebuild a histogram from previously serialized parts
    /// (the inverse of [`RddHistogram::counts`] + `compulsory`).
    pub fn from_parts(counts: [u64; 4], compulsory: u64) -> Self {
        RddHistogram { counts, compulsory }
    }

    /// Total RDs recorded (re-references only).
    pub fn total(&self) -> u64 {
        self.counts.iter().sum()
    }

    /// Bucket shares summing to 1 (Figure 3's stacked bars). All zeros
    /// if nothing was recorded.
    pub fn shares(&self) -> [f64; 4] {
        let t = self.total();
        if t == 0 {
            return [0.0; 4];
        }
        self.counts.map(|c| c as f64 / t as f64)
    }

    /// Fraction of RDs that exceed `assoc` — an upper bound on how much
    /// reuse an `assoc`-way LRU set can possibly miss.
    pub fn frac_beyond(&self, assoc: u64) -> f64 {
        let t = self.total();
        if t == 0 {
            return 0.0;
        }
        let beyond: u64 = RdBucket::ALL
            .iter()
            .filter(|&&b| match b {
                RdBucket::R1to4 => assoc < 1,
                RdBucket::R5to8 => assoc < 5,
                RdBucket::R9to64 => assoc < 9,
                RdBucket::ROver64 => assoc < 65,
            })
            .map(|&b| self.count(b))
            .sum();
        beyond as f64 / t as f64
    }

    /// Accumulate another histogram.
    pub fn merge(&mut self, o: &RddHistogram) {
        for i in 0..4 {
            self.counts[i] += o.counts[i];
        }
        self.compulsory += o.compulsory;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_boundaries_match_the_paper() {
        assert_eq!(RdBucket::of(1), RdBucket::R1to4);
        assert_eq!(RdBucket::of(4), RdBucket::R1to4);
        assert_eq!(RdBucket::of(5), RdBucket::R5to8);
        assert_eq!(RdBucket::of(8), RdBucket::R5to8);
        assert_eq!(RdBucket::of(9), RdBucket::R9to64);
        assert_eq!(RdBucket::of(64), RdBucket::R9to64);
        assert_eq!(RdBucket::of(65), RdBucket::ROver64);
        assert_eq!(RdBucket::of(1_000_000), RdBucket::ROver64);
    }

    #[test]
    fn shares_sum_to_one() {
        let mut h = RddHistogram::new();
        for rd in [1, 2, 6, 10, 100, 7, 3] {
            h.record(rd);
        }
        let s: f64 = h.shares().iter().sum();
        assert!((s - 1.0).abs() < 1e-12);
        assert_eq!(h.total(), 7);
    }

    #[test]
    fn empty_histogram_is_all_zero() {
        let h = RddHistogram::new();
        assert_eq!(h.shares(), [0.0; 4]);
        assert_eq!(h.frac_beyond(4), 0.0);
    }

    #[test]
    fn frac_beyond_counts_upper_buckets() {
        let mut h = RddHistogram::new();
        h.record(2); // within 4 ways
        h.record(6); // beyond 4, within 8
        h.record(20); // beyond 8
        h.record(100); // beyond 64
        assert!((h.frac_beyond(4) - 0.75).abs() < 1e-12);
        assert!((h.frac_beyond(8) - 0.5).abs() < 1e-12);
        assert!((h.frac_beyond(64) - 0.25).abs() < 1e-12);
    }

    #[test]
    fn merge_accumulates() {
        let mut a = RddHistogram::new();
        a.record(1);
        a.record_compulsory();
        let mut b = RddHistogram::new();
        b.record(100);
        a.merge(&b);
        assert_eq!(a.total(), 2);
        assert_eq!(a.compulsory, 1);
    }
}
