//! The §3.2 memory-access-ratio classifier.

use serde::{Deserialize, Serialize};

/// The paper's CS/CI threshold: 1 % of thread instructions being memory
/// transactions.
pub const CS_CI_THRESHOLD: f64 = 0.01;

/// Classification outcome.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AppClass {
    /// Cache Sufficient: ratio below 1 %.
    CS,
    /// Cache Insufficient: ratio at or above 1 %.
    CI,
}

/// Classify a memory-access ratio.
pub fn classify(ratio: f64) -> AppClass {
    if ratio < CS_CI_THRESHOLD {
        AppClass::CS
    } else {
        AppClass::CI
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn threshold_is_one_percent() {
        assert_eq!(classify(0.0099), AppClass::CS);
        assert_eq!(classify(0.01), AppClass::CI);
        assert_eq!(classify(0.14), AppClass::CI);
        assert_eq!(classify(0.0), AppClass::CS);
    }
}
