//! Deterministic workspace source walking for analysis tooling.
//!
//! `dlp-lint` (and any future source-level pass) needs to visit every
//! Rust source file of the workspace in a **stable order**: findings
//! are diffed against a checked-in baseline, so the walk itself must
//! not introduce filesystem-iteration nondeterminism — the very class
//! of bug the lint exists to catch. Directory entries are therefore
//! sorted byte-wise at every level, and the output is a flat sorted
//! list of workspace-relative paths with forward-slash separators on
//! every platform.

use std::io;
use std::path::{Path, PathBuf};

/// Directory names never descended into: build output, vendored
/// dependency stand-ins, and VCS/tool metadata.
const SKIP_DIRS: [&str; 5] = ["target", "vendor", ".git", ".github", ".cargo"];

/// A Rust source file found by [`walk_rust_sources`].
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SourceFile {
    /// Absolute path, for reading.
    pub abs: PathBuf,
    /// Workspace-relative path with `/` separators, for reporting —
    /// identical across platforms so baselines are portable.
    pub rel: String,
}

/// Collect every `.rs` file under `root`, depth-first with sorted
/// directory entries, skipping build output and vendored code. The
/// result is sorted by relative path, so two walks of the same tree
/// always agree — on any platform, regardless of readdir order.
pub fn walk_rust_sources(root: &Path) -> io::Result<Vec<SourceFile>> {
    let mut out = Vec::new();
    walk_dir(root, root, &mut out)?;
    out.sort_by(|a, b| a.rel.cmp(&b.rel));
    Ok(out)
}

fn walk_dir(root: &Path, dir: &Path, out: &mut Vec<SourceFile>) -> io::Result<()> {
    let mut entries: Vec<PathBuf> =
        std::fs::read_dir(dir)?.map(|e| e.map(|e| e.path())).collect::<io::Result<_>>()?;
    entries.sort();
    for path in entries {
        let name = path.file_name().and_then(|n| n.to_str()).unwrap_or("");
        if path.is_dir() {
            if SKIP_DIRS.contains(&name) || name.starts_with('.') {
                continue;
            }
            walk_dir(root, &path, out)?;
        } else if name.ends_with(".rs") {
            let rel = relative_slash_path(root, &path);
            out.push(SourceFile { abs: path, rel });
        }
    }
    Ok(())
}

/// Render `path` relative to `root` with forward slashes.
fn relative_slash_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    let parts: Vec<String> =
        rel.components().map(|c| c.as_os_str().to_string_lossy().into_owned()).collect();
    parts.join("/")
}

#[cfg(test)]
mod tests {
    use super::*;

    fn make_tree() -> std::path::PathBuf {
        let dir = std::env::temp_dir().join(format!("rd-walk-test-{}", std::process::id()));
        let _ = std::fs::remove_dir_all(&dir);
        for sub in ["crates/a/src", "crates/b/src", "target/debug", "vendor/x/src"] {
            std::fs::create_dir_all(dir.join(sub)).unwrap();
        }
        for f in [
            "crates/a/src/lib.rs",
            "crates/a/src/z.rs",
            "crates/b/src/lib.rs",
            "crates/b/README.md",
            "target/debug/junk.rs",
            "vendor/x/src/lib.rs",
        ] {
            std::fs::write(dir.join(f), "// test\n").unwrap();
        }
        dir
    }

    #[test]
    fn walk_is_sorted_and_skips_target_and_vendor() {
        let dir = make_tree();
        let files = walk_rust_sources(&dir).unwrap();
        let rels: Vec<&str> = files.iter().map(|f| f.rel.as_str()).collect();
        assert_eq!(rels, ["crates/a/src/lib.rs", "crates/a/src/z.rs", "crates/b/src/lib.rs"]);
        // Deterministic: a second walk returns the identical list.
        let again = walk_rust_sources(&dir).unwrap();
        assert_eq!(files, again);
        let _ = std::fs::remove_dir_all(&dir);
    }
}
