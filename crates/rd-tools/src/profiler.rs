//! The observer that turns an L1D access stream into RDDs.

use crate::rd::SetRdTracker;
use crate::rdd::RddHistogram;
use gpu_mem::observer::AccessObserver;
use parking_lot::Mutex;
use std::collections::HashMap;
use std::sync::Arc;

/// Aggregated profile: the overall RDD plus one RDD per static memory
/// instruction (Figure 7's view).
#[derive(Default)]
pub struct RddProfile {
    /// Whole-stream histogram (Figure 3).
    pub overall: RddHistogram,
    /// Per-PC histograms (Figure 7). RDs are attributed to the PC of
    /// the *re-accessing* instruction.
    pub per_pc: HashMap<u32, RddHistogram>,
}

/// Shared handle to a profile being filled by one or more observers.
pub type SharedRdd = Arc<Mutex<RddProfile>>;

/// An [`AccessObserver`] computing reuse distances online.
///
/// Attach one per SM (each L1D has its own set-local streams) with a
/// shared [`SharedRdd`] sink; histograms merge across SMs naturally
/// because RDs are computed per tracker before sinking.
pub struct RdProfiler {
    tracker: SetRdTracker,
    sink: SharedRdd,
}

impl RdProfiler {
    /// Profiler for a cache with `num_sets` sets, writing into `sink`.
    pub fn new(num_sets: usize, sink: SharedRdd) -> Self {
        RdProfiler { tracker: SetRdTracker::new(num_sets), sink }
    }

    /// Create a fresh shared profile sink.
    pub fn new_sink() -> SharedRdd {
        Arc::new(Mutex::new(RddProfile::default()))
    }
}

impl AccessObserver for RdProfiler {
    fn on_access(&mut self, set: usize, line_addr: u64, pc: u32, _is_write: bool) {
        let rd = self.tracker.access(set, line_addr);
        let mut prof = self.sink.lock();
        match rd {
            Some(rd) => {
                prof.overall.record(rd);
                prof.per_pc.entry(pc).or_default().record(rd);
            }
            None => {
                prof.overall.record_compulsory();
                prof.per_pc.entry(pc).or_default().record_compulsory();
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rdd::RdBucket;

    #[test]
    fn profiler_fills_overall_and_per_pc() {
        let sink = RdProfiler::new_sink();
        let mut p = RdProfiler::new(4, sink.clone());
        p.on_access(0, 10, 7, false); // compulsory
        p.on_access(0, 11, 8, false); // compulsory
        p.on_access(0, 10, 7, false); // RD 2
        let prof = sink.lock();
        assert_eq!(prof.overall.compulsory, 2);
        assert_eq!(prof.overall.count(RdBucket::R1to4), 1);
        assert_eq!(prof.per_pc[&7].count(RdBucket::R1to4), 1);
        assert_eq!(prof.per_pc[&8].total(), 0);
    }

    #[test]
    fn two_profilers_share_one_sink() {
        let sink = RdProfiler::new_sink();
        let mut a = RdProfiler::new(2, sink.clone());
        let mut b = RdProfiler::new(2, sink.clone());
        // Same line/set in both caches: each tracker counts its own
        // stream, so both re-accesses are RD 1.
        for p in [&mut a, &mut b] {
            p.on_access(1, 99, 3, false);
            p.on_access(1, 99, 3, false);
        }
        let prof = sink.lock();
        assert_eq!(prof.overall.compulsory, 2);
        assert_eq!(prof.overall.count(RdBucket::R1to4), 2);
    }
}
