//! The reuse-distance tracker: exact per-set RDs from an access stream.

use std::collections::HashMap;

/// Tracks reuse distances for one cache's sets.
///
/// The paper's RD (§3.1) counts accesses to the *set* between two
/// touches of the same line, inclusive of the re-access itself —
/// Figure 2's `A0 A1 A2 A0` example yields RD = 3 for `A0`. A first
/// touch has no RD (it is a compulsory access).
pub struct SetRdTracker {
    /// Per set: running access count.
    counts: Vec<u64>,
    /// Per set: line → access index of its previous touch.
    last: Vec<HashMap<u64, u64>>,
}

impl SetRdTracker {
    /// Tracker for `num_sets` sets.
    pub fn new(num_sets: usize) -> Self {
        SetRdTracker { counts: vec![0; num_sets], last: vec![HashMap::new(); num_sets] }
    }

    /// Record an access to `line` in `set`; returns the RD, or `None`
    /// for a first touch.
    pub fn access(&mut self, set: usize, line: u64) -> Option<u64> {
        let idx = {
            self.counts[set] += 1;
            self.counts[set]
        };
        self.last[set].insert(line, idx).map(|prev| idx - prev)
    }

    /// Accesses seen in `set` so far.
    pub fn set_accesses(&self, set: usize) -> u64 {
        self.counts[set]
    }

    /// Distinct lines ever seen in `set`.
    pub fn set_lines(&self, set: usize) -> usize {
        self.last[set].len()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn figure_2_example() {
        // A0 A1 A2 A0 -> RD(A0 re-access) = 3.
        let mut t = SetRdTracker::new(1);
        assert_eq!(t.access(0, 0), None);
        assert_eq!(t.access(0, 1), None);
        assert_eq!(t.access(0, 2), None);
        assert_eq!(t.access(0, 0), Some(3));
    }

    #[test]
    fn back_to_back_reuse_is_rd_one() {
        let mut t = SetRdTracker::new(1);
        t.access(0, 9);
        assert_eq!(t.access(0, 9), Some(1));
        assert_eq!(t.access(0, 9), Some(1));
    }

    #[test]
    fn sets_do_not_interfere() {
        let mut t = SetRdTracker::new(2);
        t.access(0, 5);
        t.access(1, 6);
        t.access(1, 7);
        // Set 1 traffic must not stretch set 0's distances.
        assert_eq!(t.access(0, 5), Some(1));
        assert_eq!(t.access(1, 6), Some(2));
    }

    #[test]
    fn rd_independent_of_associativity_by_construction() {
        // The tracker never sees ways — this test documents the §3.1
        // property that the RD stream is a pure function of (addresses,
        // set mapping).
        let mut t = SetRdTracker::new(4);
        let stream = [(0, 1u64), (0, 2), (0, 1), (1, 2), (0, 2)];
        let rds: Vec<_> = stream.iter().map(|&(s, l)| t.access(s, l)).collect();
        assert_eq!(rds, vec![None, None, Some(2), None, Some(2)]);
    }

    #[test]
    fn bookkeeping_counters() {
        let mut t = SetRdTracker::new(1);
        t.access(0, 1);
        t.access(0, 2);
        t.access(0, 1);
        assert_eq!(t.set_accesses(0), 3);
        assert_eq!(t.set_lines(0), 2);
    }
}
