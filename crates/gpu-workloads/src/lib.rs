//! # gpu-workloads — benchmark models for the DLP evaluation
//!
//! The paper evaluates 18 CUDA applications from Rodinia, CUDA Samples,
//! Mars, Parboil and Polybench (Table 2). Their binaries cannot run
//! here, so each is modeled as a synthetic SIMT kernel that reproduces
//! the properties every figure in the paper is driven by:
//!
//! * the **memory-access ratio** (transactions per thread instruction,
//!   §3.2) that splits the suite into Cache-Sufficient (< 1 %) and
//!   Cache-Insufficient applications,
//! * the **reuse-distance distribution** of its address stream —
//!   streaming/compulsory-dominated (HG, STEN), short-RD (SC, BP,
//!   SRAD, GEMM), mixed (MM, BFS), or long-RD working sets that thrash
//!   a 16 KB L1D but respond to line protection (KM, SS, SR2K, ...),
//! * the **per-instruction diversity** of those distributions (§3.3) —
//!   e.g. BFS mixes short-RD structural loads with mid-RD visited-flag
//!   probes, which is what separates DLP from Global-Protection.
//!
//! Each model lives in [`apps`] and documents which traits of the real
//! application it reproduces. [`registry`] lists all 18 with their
//! Table 2 metadata; [`build`] instantiates one by abbreviation.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod apps;
pub mod gen;
pub mod pattern;
pub mod registry;
pub mod trace;

pub use gen::{GenStream, SegmentSource, WarpCtx};
pub use registry::{build, registry, AppClass, BenchSpec, Scale};
pub use trace::{TraceError, TraceKernel};
