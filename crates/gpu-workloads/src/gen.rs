//! Generator-style warp streams: each benchmark model emits its trace
//! one *segment* at a time instead of materializing the whole warp.
//!
//! A segment is one natural unit of the app's loop structure — the
//! desync prologue, one loop iteration (or one unroll-and-jam group),
//! or a trailing epilogue store. [`GenStream`] adapts a
//! [`SegmentSource`] to the simulator's [`OpStream`] cursor interface
//! with a single-segment buffer, so a warp's resident trace state is
//! bounded by its largest segment no matter how many iterations the
//! scale axis multiplies in.
//!
//! Byte-identity with the old materialized traces is guaranteed by
//! construction: each app's per-iteration body moved verbatim from its
//! former `warp_ops` into [`SegmentSource::emit`], and the carried
//! state (RNG, ALU pc counter) threads through segments exactly as it
//! threaded through the original loop. `tests/stream_equivalence.rs`
//! pins this per app.

use crate::pattern::warp_rng;
use gpu_sim::isa::TraceOp;
use gpu_sim::stream::{ops_bytes, OpStream};
use rand::rngs::StdRng;

/// Per-warp state every generator carries: position, the ALU-pc
/// counter that `alu_block`/`desync` advance, the deterministic
/// per-warp RNG, and a reusable lane-address scratch buffer so the hot
/// path allocates nothing beyond the op-owned address vectors.
pub struct WarpCtx {
    /// CTA index of this warp.
    pub cta: usize,
    /// Warp index within the CTA.
    pub warp: usize,
    /// Next ALU pc — starts at 64, above the memory-pc space.
    pub apc: u32,
    /// Deterministic per-warp RNG (state advances across segments
    /// exactly as it advanced across the original loop iterations).
    pub rng: StdRng,
    /// Reusable lane-address build buffer for `*_into` pattern helpers.
    pub scratch: Vec<u64>,
    seed: u64,
}

impl WarpCtx {
    /// Fresh state for `(seed, cta, warp)`. Apps without an RNG pass
    /// any fixed seed; the RNG is simply never consumed.
    pub fn new(seed: u64, cta: usize, warp: usize) -> Self {
        WarpCtx { cta, warp, apc: 64, rng: warp_rng(seed, cta, warp), scratch: Vec::new(), seed }
    }

    /// Rewind to the state [`WarpCtx::new`] produced (same RNG stream,
    /// `apc` back at 64) for an identical replay.
    pub fn reset(&mut self) {
        self.apc = 64;
        self.rng = warp_rng(self.seed, self.cta, self.warp);
        self.scratch.clear();
    }
}

/// One benchmark warp as a sequence of segments.
///
/// `emit` is called with `seg` = 0, 1, 2, ... in order; it appends
/// segment `seg`'s ops to `out` and returns `true`, or returns `false`
/// (appending nothing) once `seg` is past the end. State carried
/// across segments (RNG, apc) must advance only in calls that return
/// `true`, and [`SegmentSource::reset`] must restore it so the segment
/// sequence replays identically.
pub trait SegmentSource: Send {
    /// Append segment `seg`'s ops; `false` = no such segment.
    fn emit(&mut self, seg: u64, out: &mut Vec<TraceOp>) -> bool;

    /// Restore the post-construction state for an identical replay.
    fn reset(&mut self);
}

/// [`OpStream`] over a [`SegmentSource`]: buffers exactly one segment
/// at a time, reusing the buffer's capacity across refills.
pub struct GenStream<G: SegmentSource> {
    gen: G,
    seg: u64,
    buf: Vec<TraceOp>,
    at: usize,
    done: bool,
    peak: usize,
}

impl<G: SegmentSource> GenStream<G> {
    /// Wrap a segment source positioned at its first segment.
    pub fn new(gen: G) -> Self {
        GenStream { gen, seg: 0, buf: Vec::new(), at: 0, done: false, peak: 0 }
    }

    fn fill(&mut self) {
        while self.at >= self.buf.len() && !self.done {
            self.buf.clear();
            self.at = 0;
            if self.gen.emit(self.seg, &mut self.buf) {
                self.seg += 1;
                self.peak = self.peak.max(ops_bytes(&self.buf));
            } else {
                self.done = true;
            }
        }
    }
}

impl<G: SegmentSource> OpStream for GenStream<G> {
    fn next_op(&mut self) -> Option<TraceOp> {
        self.fill();
        if self.at >= self.buf.len() {
            return None;
        }
        // Move the op out, leaving a heap-free placeholder so consumed
        // slots cost nothing and the buffer keeps its capacity.
        let op = std::mem::replace(&mut self.buf[self.at], TraceOp::alu(0, 0));
        self.at += 1;
        Some(op)
    }

    fn peek(&mut self) -> Option<&TraceOp> {
        self.fill();
        self.buf.get(self.at)
    }

    fn reset(&mut self) {
        self.gen.reset();
        self.seg = 0;
        self.buf.clear();
        self.at = 0;
        self.done = false;
    }

    fn resident_bytes(&self) -> usize {
        ops_bytes(&self.buf)
    }

    fn peak_resident_bytes(&self) -> usize {
        self.peak
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::stream::materialize;

    /// Three segments of one ALU op each, pc = segment index.
    struct Three;
    impl SegmentSource for Three {
        fn emit(&mut self, seg: u64, out: &mut Vec<TraceOp>) -> bool {
            if seg >= 3 {
                return false;
            }
            out.push(TraceOp::alu(seg as u32 + 100, 1));
            true
        }
        fn reset(&mut self) {}
    }

    #[test]
    fn segments_concatenate_in_order() {
        let ops = materialize(Box::new(GenStream::new(Three)));
        let pcs: Vec<u32> = ops.iter().map(|o| o.pc).collect();
        assert_eq!(pcs, vec![100, 101, 102]);
    }

    #[test]
    fn peek_then_next_agree_across_refills() {
        let mut s = GenStream::new(Three);
        for _ in 0..3 {
            let peeked = s.peek().expect("op").pc;
            assert_eq!(s.next_op().expect("op").pc, peeked);
        }
        assert!(s.peek().is_none());
        assert!(s.next_op().is_none());
    }

    #[test]
    fn reset_replays_identically() {
        let mut s = GenStream::new(Three);
        let first: Vec<u32> = std::iter::from_fn(|| s.next_op()).map(|o| o.pc).collect();
        s.reset();
        let again: Vec<u32> = std::iter::from_fn(|| s.next_op()).map(|o| o.pc).collect();
        assert_eq!(first, again);
    }

    #[test]
    fn resident_state_is_one_segment() {
        let mut s = GenStream::new(Three);
        s.peek();
        // One buffered ALU op, never the whole three-segment trace.
        assert_eq!(s.resident_bytes(), std::mem::size_of::<TraceOp>());
        while s.next_op().is_some() {}
        assert_eq!(s.peak_resident_bytes(), std::mem::size_of::<TraceOp>());
    }

    #[test]
    fn warp_ctx_reset_restores_rng_and_apc() {
        let mut ctx = WarpCtx::new(7, 1, 2);
        let a: u64 = rand::Rng::gen(&mut ctx.rng);
        ctx.apc = 99;
        ctx.reset();
        let b: u64 = rand::Rng::gen(&mut ctx.rng);
        assert_eq!(a, b);
        assert_eq!(ctx.apc, 64);
    }
}
