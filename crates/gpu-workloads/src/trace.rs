//! Bounded-memory ingestion of external trace files.
//!
//! Besides the synthetic models in [`crate::apps`], the simulator can
//! replay traces captured elsewhere (e.g. converted from Accel-Sim
//! dumps). [`TraceKernel::open`] indexes a trace file — one byte-range
//! per `(cta, warp)` section — and validates every record once; each
//! warp then replays its section through a [`FileStream`], which reads
//! one chunk at a time (open → seek → read → close per refill, an
//! incomplete trailing record carried into the next chunk). Resident
//! state per warp is one chunk, not the warp's trace, so a gigabyte
//! trace file costs the same memory as a kilobyte one — the ingestion
//! half of the scale axis.
//!
//! Two formats are supported, sniffed from the first bytes:
//!
//! **Text** (`dlp-trace-v1`): a header line, a `grid <ctas> <warps>`
//! line, then `warp <cta> <warp>` sections of op lines. Registers are
//! numbers or `-` for none; lane addresses are comma-separated:
//!
//! ```text
//! dlp-trace-v1
//! grid 2 2
//! warp 0 0
//! ld 0 1 - - 0,128,256
//! alu 64 4 32 2 1 -
//! st 5 2 - 4096
//! ```
//!
//! **Binary** (`DLPT` magic + version byte): `u32` grid dims, then
//! length-prefixed warp blocks — `u32 cta, u32 warp, u64 payload_len`
//! followed by `payload_len` bytes of op records (all integers
//! little-endian). The length prefix lets the indexer skip payloads
//! without parsing them.
//!
//! Malformed input is a typed [`TraceError`], never a panic: the
//! `figures trace` front-end maps it to exit code 2.

use gpu_sim::isa::{OpKind, Reg, TraceOp, MAX_REGS, NO_REG};
use gpu_sim::stream::{ops_bytes, OpStream};
use gpu_sim::{GridDesc, Kernel};
use std::collections::HashMap;
use std::fmt;
use std::fs::File;
use std::io::{self, BufRead, BufWriter, Read, Seek, SeekFrom, Write};
use std::path::{Path, PathBuf};

/// Header line of the text trace format.
pub const TEXT_MAGIC: &str = "dlp-trace-v1";

/// Magic bytes of the binary trace format (followed by a version byte).
pub const BIN_MAGIC: [u8; 4] = *b"DLPT";

/// Current binary format version.
pub const BIN_VERSION: u8 = 1;

/// Bytes read per [`FileStream`] refill.
const CHUNK: usize = 64 << 10;

/// Sanity cap on `ctas * warps` (a million-warp grid is already far
/// beyond anything the 16-SM machine schedules).
const MAX_WARPS: u64 = 1 << 22;

/// Which on-disk format a trace file uses.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum Format {
    Text,
    Binary,
}

/// Why a trace file was rejected.
#[derive(Debug)]
pub enum TraceError {
    /// The underlying file could not be read.
    Io(io::Error),
    /// The file's contents violate the trace format.
    Malformed {
        /// Where the problem is (a line, byte offset or warp section).
        at: String,
        /// What was wrong.
        msg: String,
    },
}

impl fmt::Display for TraceError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceError::Io(e) => write!(f, "trace i/o error: {e}"),
            TraceError::Malformed { at, msg } => write!(f, "malformed trace ({at}): {msg}"),
        }
    }
}

impl std::error::Error for TraceError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            TraceError::Io(e) => Some(e),
            TraceError::Malformed { .. } => None,
        }
    }
}

impl From<io::Error> for TraceError {
    fn from(e: io::Error) -> Self {
        TraceError::Io(e)
    }
}

fn malformed(at: impl Into<String>, msg: impl Into<String>) -> TraceError {
    TraceError::Malformed { at: at.into(), msg: msg.into() }
}

/// A kernel replayed from a trace file through chunked, O(1)-per-warp
/// [`FileStream`]s. See the module docs for the formats.
#[derive(Clone, Debug)]
pub struct TraceKernel {
    path: PathBuf,
    name: String,
    grid: GridDesc,
    format: Format,
    /// `(cta, warp)` → byte range of that warp's op section. Warps with
    /// no section replay as empty streams.
    spans: HashMap<(usize, usize), (u64, u64)>,
}

impl TraceKernel {
    /// Index and fully validate a trace file. Every op record is parsed
    /// once through the same chunked parser the replay uses, so a
    /// successful `open` guarantees the simulation never hits a parse
    /// error mid-run.
    pub fn open(path: &Path) -> Result<Self, TraceError> {
        let mut head = [0u8; 4];
        let mut f = File::open(path)?;
        let n = read_full(&mut f, &mut head)?;
        drop(f);
        let format = if n == 4 && head == BIN_MAGIC { Format::Binary } else { Format::Text };
        let (grid, spans) = match format {
            Format::Text => scan_text(path)?,
            Format::Binary => scan_binary(path)?,
        };
        let name = path
            .file_stem()
            .map(|s| s.to_string_lossy().into_owned())
            .unwrap_or_else(|| "TRACE".to_string());
        let kernel = TraceKernel { path: path.to_path_buf(), name, grid, format, spans };
        for &(cta, warp) in kernel.spans.keys() {
            let mut s = kernel.stream(cta, warp);
            while s.next_checked()?.is_some() {}
        }
        Ok(kernel)
    }

    /// Warps that actually have a trace section in the file.
    pub fn recorded_warps(&self) -> usize {
        self.spans.len()
    }

    fn stream(&self, cta: usize, warp: usize) -> FileStream {
        let (offset, len) = self.spans.get(&(cta, warp)).copied().unwrap_or((0, 0));
        FileStream {
            path: self.path.clone(),
            format: self.format,
            section: format!("warp {cta}/{warp}"),
            offset,
            len,
            pos: 0,
            carry: Vec::new(),
            buf: Vec::new(),
            at: 0,
            peak: 0,
            chunk: CHUNK,
        }
    }
}

impl Kernel for TraceKernel {
    fn name(&self) -> &str {
        &self.name
    }

    fn grid(&self) -> GridDesc {
        self.grid
    }

    fn warp_stream(&self, cta: usize, warp: usize) -> Box<dyn OpStream> {
        Box::new(self.stream(cta, warp))
    }
}

/// Chunked [`OpStream`] over one warp's section of a trace file.
///
/// Each refill opens the file, seeks to the unread tail of the section,
/// reads one chunk and closes the file again (no descriptor is held
/// between refills — thousands of concurrent warps cannot exhaust the
/// fd table). Complete records in the chunk are parsed into the op
/// buffer; an incomplete trailing line/record is carried into the next
/// refill.
pub struct FileStream {
    path: PathBuf,
    format: Format,
    section: String,
    offset: u64,
    len: u64,
    pos: u64,
    carry: Vec<u8>,
    buf: Vec<TraceOp>,
    at: usize,
    peak: usize,
    chunk: usize,
}

impl FileStream {
    /// Pull the next op, surfacing parse/read failures as errors
    /// instead of panicking — this is what [`TraceKernel::open`] drives
    /// during validation.
    pub fn next_checked(&mut self) -> Result<Option<TraceOp>, TraceError> {
        if self.at >= self.buf.len() {
            self.refill()?;
            if self.at >= self.buf.len() {
                return Ok(None);
            }
        }
        // Move the op out, leaving a heap-free placeholder so consumed
        // slots cost nothing and the buffer keeps its capacity.
        let op = std::mem::replace(&mut self.buf[self.at], TraceOp::alu(0, 0));
        self.at += 1;
        Ok(Some(op))
    }

    fn refill(&mut self) -> Result<(), TraceError> {
        self.buf.clear();
        self.at = 0;
        while self.buf.is_empty() && self.pos < self.len {
            let want = self.chunk.min((self.len - self.pos) as usize);
            let mut f = File::open(&self.path)?;
            f.seek(SeekFrom::Start(self.offset + self.pos))?;
            let start = self.carry.len();
            self.carry.resize(start + want, 0);
            let n = read_full(&mut f, &mut self.carry[start..])?;
            self.carry.truncate(start + n);
            if n < want {
                return Err(malformed(&self.section, "trace file shrank during replay"));
            }
            self.pos += n as u64;
            let consumed = match self.format {
                Format::Text => parse_text_ops(&self.carry, self.pos >= self.len, &mut self.buf)?,
                Format::Binary => parse_bin_ops(&self.carry, &mut self.buf)?,
            };
            self.carry.drain(..consumed);
        }
        if self.pos >= self.len && !self.carry.is_empty() && self.buf.is_empty() {
            return Err(malformed(&self.section, "truncated record at end of section"));
        }
        self.peak = self.peak.max(ops_bytes(&self.buf) + self.carry.len());
        Ok(())
    }
}

impl OpStream for FileStream {
    fn next_op(&mut self) -> Option<TraceOp> {
        self.next_checked()
            .expect("trace file validated at open() failed during replay — changed on disk?")
    }

    fn peek(&mut self) -> Option<&TraceOp> {
        if self.at >= self.buf.len() {
            self.refill()
                .expect("trace file validated at open() failed during replay — changed on disk?");
        }
        self.buf.get(self.at)
    }

    fn reset(&mut self) {
        self.pos = 0;
        self.carry.clear();
        self.buf.clear();
        self.at = 0;
    }

    fn resident_bytes(&self) -> usize {
        ops_bytes(&self.buf) + self.carry.len()
    }

    fn peak_resident_bytes(&self) -> usize {
        self.peak
    }
}

/// Read until `buf` is full or EOF; returns bytes read.
fn read_full(f: &mut impl Read, buf: &mut [u8]) -> Result<usize, TraceError> {
    let mut n = 0;
    while n < buf.len() {
        let k = f.read(&mut buf[n..])?;
        if k == 0 {
            break;
        }
        n += k;
    }
    Ok(n)
}

// ---------------------------------------------------------------- text

type Spans = HashMap<(usize, usize), (u64, u64)>;

/// Structural scan of a text trace: header, grid line, warp-section
/// byte ranges. Op-line *syntax* is validated by the replay pass in
/// [`TraceKernel::open`], through the same parser the simulator uses.
fn scan_text(path: &Path) -> Result<(GridDesc, Spans), TraceError> {
    let mut rd = io::BufReader::new(File::open(path)?);
    let mut line = String::new();
    let mut off: u64 = 0;
    let mut lineno: u64 = 0;
    let mut grid: Option<GridDesc> = None;
    let mut spans: Spans = HashMap::new();
    let mut open_span: Option<((usize, usize), u64)> = None;
    loop {
        line.clear();
        let n = rd.read_line(&mut line)?;
        if n == 0 {
            break;
        }
        lineno += 1;
        let start = off;
        off += n as u64;
        let t = line.trim();
        if lineno == 1 {
            if t != TEXT_MAGIC {
                return Err(malformed("line 1", format!("expected `{TEXT_MAGIC}` header")));
            }
            continue;
        }
        if t.is_empty() || t.starts_with('#') {
            continue;
        }
        let at = || format!("line {lineno}");
        let mut it = t.split_whitespace();
        match it.next().unwrap_or("") {
            "grid" => {
                if grid.is_some() {
                    return Err(malformed(at(), "duplicate `grid` line"));
                }
                if open_span.is_some() {
                    return Err(malformed(at(), "`grid` must precede all `warp` sections"));
                }
                let ctas = parse_dim(it.next(), &at(), "cta count")?;
                let warps = parse_dim(it.next(), &at(), "warp count")?;
                if it.next().is_some() {
                    return Err(malformed(at(), "trailing tokens after `grid`"));
                }
                check_grid(ctas, warps, &at())?;
                grid = Some(GridDesc { num_ctas: ctas, warps_per_cta: warps });
            }
            "warp" => {
                let g = grid.ok_or_else(|| malformed(at(), "`warp` before `grid`"))?;
                let cta = parse_dim(it.next(), &at(), "cta index")?;
                let warp = parse_dim(it.next(), &at(), "warp index")?;
                if it.next().is_some() {
                    return Err(malformed(at(), "trailing tokens after `warp`"));
                }
                if cta >= g.num_ctas || warp >= g.warps_per_cta {
                    return Err(malformed(at(), format!("warp {cta}/{warp} outside the grid")));
                }
                if let Some((key, span_off)) = open_span.take() {
                    spans.insert(key, (span_off, start - span_off));
                }
                if spans.contains_key(&(cta, warp)) {
                    return Err(malformed(at(), format!("duplicate section for warp {cta}/{warp}")));
                }
                open_span = Some(((cta, warp), off));
            }
            _ => {
                if open_span.is_none() {
                    return Err(malformed(at(), "op line before the first `warp` section"));
                }
            }
        }
    }
    if let Some((key, span_off)) = open_span.take() {
        spans.insert(key, (span_off, off - span_off));
    }
    let grid = grid.ok_or_else(|| malformed("end of file", "missing `grid` line"))?;
    Ok((grid, spans))
}

fn parse_dim(tok: Option<&str>, at: &str, what: &str) -> Result<usize, TraceError> {
    tok.and_then(|t| t.parse().ok())
        .ok_or_else(|| malformed(at, format!("missing or invalid {what}")))
}

fn check_grid(ctas: usize, warps: usize, at: &str) -> Result<(), TraceError> {
    if ctas == 0 || warps == 0 {
        return Err(malformed(at, "grid dimensions must be nonzero"));
    }
    if (ctas as u64).saturating_mul(warps as u64) > MAX_WARPS {
        return Err(malformed(at, format!("grid exceeds {MAX_WARPS} warps")));
    }
    Ok(())
}

/// Parse the complete op lines in `bytes`; returns bytes consumed. With
/// `at_end`, a trailing line without a newline is parsed too.
fn parse_text_ops(bytes: &[u8], at_end: bool, out: &mut Vec<TraceOp>) -> Result<usize, TraceError> {
    let mut i = 0;
    while i < bytes.len() {
        let (end, next) = match bytes[i..].iter().position(|&b| b == b'\n') {
            Some(r) => (i + r, i + r + 1),
            None if at_end => (bytes.len(), bytes.len()),
            None => break,
        };
        let line = std::str::from_utf8(&bytes[i..end])
            .map_err(|_| malformed("trace section", "non-UTF-8 bytes in op line"))?;
        if let Some(op) = parse_text_op(line)? {
            out.push(op);
        }
        i = next;
    }
    Ok(i)
}

fn bad_line(line: &str, msg: impl Into<String>) -> TraceError {
    malformed(format!("op line `{}`", line.trim()), msg)
}

fn parse_text_op(line: &str) -> Result<Option<TraceOp>, TraceError> {
    let t = line.trim();
    if t.is_empty() || t.starts_with('#') {
        return Ok(None);
    }
    let toks: Vec<&str> = t.split_whitespace().collect();
    let op = match toks[0] {
        "alu" => {
            if toks.len() != 7 {
                return Err(bad_line(t, "expected `alu pc latency active dst s0 s1`"));
            }
            let active: u8 =
                toks[3].parse().map_err(|_| bad_line(t, "invalid active-lane count"))?;
            if !(1..=32).contains(&active) {
                return Err(bad_line(t, "active lanes must be 1..=32"));
            }
            TraceOp {
                pc: parse_u32(toks[1], t)?,
                dst: parse_reg(toks[4], t)?,
                srcs: [parse_reg(toks[5], t)?, parse_reg(toks[6], t)?],
                kind: OpKind::Alu { latency: parse_u32(toks[2], t)?, active },
            }
        }
        "ld" => {
            if toks.len() != 6 {
                return Err(bad_line(t, "expected `ld pc dst s0 s1 addr,addr,...`"));
            }
            let dst = parse_reg(toks[2], t)?;
            if dst == NO_REG {
                return Err(bad_line(t, "loads must write a register"));
            }
            TraceOp {
                pc: parse_u32(toks[1], t)?,
                dst,
                srcs: [parse_reg(toks[3], t)?, parse_reg(toks[4], t)?],
                kind: OpKind::Mem { is_write: false, addrs: parse_addrs(toks[5], t)? },
            }
        }
        "st" => {
            if toks.len() != 5 {
                return Err(bad_line(t, "expected `st pc s0 s1 addr,addr,...`"));
            }
            TraceOp {
                pc: parse_u32(toks[1], t)?,
                dst: NO_REG,
                srcs: [parse_reg(toks[2], t)?, parse_reg(toks[3], t)?],
                kind: OpKind::Mem { is_write: true, addrs: parse_addrs(toks[4], t)? },
            }
        }
        kw => return Err(bad_line(t, format!("unknown keyword `{kw}`"))),
    };
    Ok(Some(op))
}

fn parse_u32(tok: &str, line: &str) -> Result<u32, TraceError> {
    tok.parse().map_err(|_| bad_line(line, format!("invalid number `{tok}`")))
}

fn parse_reg(tok: &str, line: &str) -> Result<Reg, TraceError> {
    if tok == "-" {
        return Ok(NO_REG);
    }
    let r: u8 = tok.parse().map_err(|_| bad_line(line, format!("invalid register `{tok}`")))?;
    if (r as usize) >= MAX_REGS {
        return Err(bad_line(line, format!("register {r} out of range (< {MAX_REGS})")));
    }
    Ok(r)
}

fn parse_addrs(tok: &str, line: &str) -> Result<Vec<u64>, TraceError> {
    let addrs: Vec<u64> = tok
        .split(',')
        .map(|a| a.parse().map_err(|_| bad_line(line, format!("invalid address `{a}`"))))
        .collect::<Result<_, _>>()?;
    if addrs.is_empty() || addrs.len() > 32 {
        return Err(bad_line(line, "1..=32 lane addresses required"));
    }
    Ok(addrs)
}

// -------------------------------------------------------------- binary

/// Structural scan of a binary trace: header, grid dims, and the
/// length-prefixed warp blocks (payloads skipped via their prefix; the
/// replay pass in [`TraceKernel::open`] validates record contents).
fn scan_binary(path: &Path) -> Result<(GridDesc, Spans), TraceError> {
    let mut f = File::open(path)?;
    let file_len = f.metadata()?.len();
    let mut hdr = [0u8; 13];
    if read_full(&mut f, &mut hdr)? < 13 {
        return Err(malformed("header", "truncated binary header"));
    }
    if hdr[4] != BIN_VERSION {
        return Err(malformed("header", format!("unsupported version {}", hdr[4])));
    }
    let ctas = u32::from_le_bytes([hdr[5], hdr[6], hdr[7], hdr[8]]) as usize;
    let warps = u32::from_le_bytes([hdr[9], hdr[10], hdr[11], hdr[12]]) as usize;
    check_grid(ctas, warps, "header")?;
    let mut spans: Spans = HashMap::new();
    let mut pos: u64 = 13;
    loop {
        let mut wh = [0u8; 16];
        let n = read_full(&mut f, &mut wh)?;
        if n == 0 {
            break;
        }
        let at = || format!("byte {pos}");
        if n < 16 {
            return Err(malformed(at(), "truncated warp-block header"));
        }
        let cta = u32::from_le_bytes([wh[0], wh[1], wh[2], wh[3]]) as usize;
        let warp = u32::from_le_bytes([wh[4], wh[5], wh[6], wh[7]]) as usize;
        let len = u64::from_le_bytes([wh[8], wh[9], wh[10], wh[11], wh[12], wh[13], wh[14], wh[15]]);
        if cta >= ctas || warp >= warps {
            return Err(malformed(at(), format!("warp {cta}/{warp} outside the grid")));
        }
        if spans.contains_key(&(cta, warp)) {
            return Err(malformed(at(), format!("duplicate block for warp {cta}/{warp}")));
        }
        if pos + 16 + len > file_len {
            return Err(malformed(at(), "warp-block payload runs past end of file"));
        }
        spans.insert((cta, warp), (pos + 16, len));
        pos += 16 + len;
        f.seek(SeekFrom::Start(pos))?;
    }
    Ok((GridDesc { num_ctas: ctas, warps_per_cta: warps }, spans))
}

/// Parse the complete binary op records in `bytes`; returns bytes
/// consumed (an incomplete trailing record is left for the next chunk).
fn parse_bin_ops(bytes: &[u8], out: &mut Vec<TraceOp>) -> Result<usize, TraceError> {
    let mut i = 0;
    while let Some((op, sz)) = parse_bin_op(&bytes[i..])? {
        out.push(op);
        i += sz;
    }
    Ok(i)
}

fn bin_reg(r: u8) -> Result<Reg, TraceError> {
    if r != NO_REG && (r as usize) >= MAX_REGS {
        return Err(malformed("binary record", format!("register {r} out of range")));
    }
    Ok(r)
}

fn parse_bin_op(b: &[u8]) -> Result<Option<(TraceOp, usize)>, TraceError> {
    // Common prefix: tag, pc, dst, s0, s1.
    if b.len() < 8 {
        return Ok(None);
    }
    let pc = u32::from_le_bytes([b[1], b[2], b[3], b[4]]);
    let dst = bin_reg(b[5])?;
    let srcs = [bin_reg(b[6])?, bin_reg(b[7])?];
    match b[0] {
        0 => {
            if b.len() < 13 {
                return Ok(None);
            }
            let latency = u32::from_le_bytes([b[8], b[9], b[10], b[11]]);
            let active = b[12];
            if !(1..=32).contains(&active) {
                return Err(malformed("binary record", "active lanes must be 1..=32"));
            }
            Ok(Some((TraceOp { pc, dst, srcs, kind: OpKind::Alu { latency, active } }, 13)))
        }
        tag @ (1 | 2) => {
            if b.len() < 9 {
                return Ok(None);
            }
            let nlanes = b[8] as usize;
            if nlanes == 0 || nlanes > 32 {
                return Err(malformed("binary record", "1..=32 lane addresses required"));
            }
            let need = 9 + 8 * nlanes;
            if b.len() < need {
                return Ok(None);
            }
            if tag == 1 && dst == NO_REG {
                return Err(malformed("binary record", "loads must write a register"));
            }
            let addrs = b[9..need]
                .chunks_exact(8)
                .map(|c| u64::from_le_bytes([c[0], c[1], c[2], c[3], c[4], c[5], c[6], c[7]]))
                .collect();
            let kind = OpKind::Mem { is_write: tag == 2, addrs };
            Ok(Some((TraceOp { pc, dst, srcs, kind }, need)))
        }
        tag => Err(malformed("binary record", format!("unknown op tag {tag}"))),
    }
}

// ------------------------------------------------------------- writers

/// Serialize a kernel's streams to the text trace format. Streams warp
/// by warp, so memory stays bounded by one op.
pub fn write_text_trace(path: &Path, kernel: &dyn Kernel) -> io::Result<()> {
    let mut w = BufWriter::new(File::create(path)?);
    writeln!(w, "{TEXT_MAGIC}")?;
    let g = kernel.grid();
    writeln!(w, "grid {} {}", g.num_ctas, g.warps_per_cta)?;
    for cta in 0..g.num_ctas {
        for warp in 0..g.warps_per_cta {
            writeln!(w, "warp {cta} {warp}")?;
            let mut s = kernel.warp_stream(cta, warp);
            while let Some(op) = s.next_op() {
                writeln!(w, "{}", text_op(&op))?;
            }
        }
    }
    w.flush()
}

fn reg_str(r: Reg) -> String {
    if r == NO_REG {
        "-".to_string()
    } else {
        r.to_string()
    }
}

fn addrs_str(addrs: &[u64]) -> String {
    addrs.iter().map(u64::to_string).collect::<Vec<_>>().join(",")
}

fn text_op(op: &TraceOp) -> String {
    match &op.kind {
        OpKind::Alu { latency, active } => format!(
            "alu {} {} {} {} {} {}",
            op.pc,
            latency,
            active,
            reg_str(op.dst),
            reg_str(op.srcs[0]),
            reg_str(op.srcs[1])
        ),
        OpKind::Mem { is_write: false, addrs } => format!(
            "ld {} {} {} {} {}",
            op.pc,
            reg_str(op.dst),
            reg_str(op.srcs[0]),
            reg_str(op.srcs[1]),
            addrs_str(addrs)
        ),
        OpKind::Mem { is_write: true, addrs } => format!(
            "st {} {} {} {}",
            op.pc,
            reg_str(op.srcs[0]),
            reg_str(op.srcs[1]),
            addrs_str(addrs)
        ),
    }
}

/// Serialize a kernel's streams to the binary trace format. The warp
/// block's length prefix is written as a placeholder and patched after
/// the payload streams out, so memory stays bounded by one op.
pub fn write_binary_trace(path: &Path, kernel: &dyn Kernel) -> io::Result<()> {
    let mut f = File::create(path)?;
    f.write_all(&BIN_MAGIC)?;
    f.write_all(&[BIN_VERSION])?;
    let g = kernel.grid();
    f.write_all(&(g.num_ctas as u32).to_le_bytes())?;
    f.write_all(&(g.warps_per_cta as u32).to_le_bytes())?;
    let mut rec = Vec::new();
    for cta in 0..g.num_ctas {
        for warp in 0..g.warps_per_cta {
            f.write_all(&(cta as u32).to_le_bytes())?;
            f.write_all(&(warp as u32).to_le_bytes())?;
            let len_pos = f.stream_position()?;
            f.write_all(&0u64.to_le_bytes())?;
            let mut payload: u64 = 0;
            let mut s = kernel.warp_stream(cta, warp);
            while let Some(op) = s.next_op() {
                rec.clear();
                encode_bin_op(&op, &mut rec);
                f.write_all(&rec)?;
                payload += rec.len() as u64;
            }
            let end = f.stream_position()?;
            f.seek(SeekFrom::Start(len_pos))?;
            f.write_all(&payload.to_le_bytes())?;
            f.seek(SeekFrom::Start(end))?;
        }
    }
    Ok(())
}

fn encode_bin_op(op: &TraceOp, out: &mut Vec<u8>) {
    let (tag, payload): (u8, Option<&Vec<u64>>) = match &op.kind {
        OpKind::Alu { .. } => (0, None),
        OpKind::Mem { is_write: false, addrs } => (1, Some(addrs)),
        OpKind::Mem { is_write: true, addrs } => (2, Some(addrs)),
    };
    out.push(tag);
    out.extend_from_slice(&op.pc.to_le_bytes());
    out.push(op.dst);
    out.push(op.srcs[0]);
    out.push(op.srcs[1]);
    match &op.kind {
        OpKind::Alu { latency, active } => {
            out.extend_from_slice(&latency.to_le_bytes());
            out.push(*active);
        }
        OpKind::Mem { .. } => {
            let addrs = payload.expect("mem op carries addresses");
            out.push(addrs.len() as u8);
            for a in addrs {
                out.extend_from_slice(&a.to_le_bytes());
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use gpu_sim::stream::{materialize, VecStream};
    use std::sync::atomic::{AtomicU64, Ordering};

    /// Unique temp path per test (process id + counter).
    fn tmp(name: &str) -> PathBuf {
        static N: AtomicU64 = AtomicU64::new(0);
        let n = N.fetch_add(1, Ordering::Relaxed);
        std::env::temp_dir().join(format!("dlp-trace-{}-{n}-{name}", std::process::id()))
    }

    /// 2×2 grid with per-warp distinct ops covering every record shape.
    struct Toy {
        reps: usize,
    }

    impl Kernel for Toy {
        fn name(&self) -> &str {
            "TOY"
        }
        fn grid(&self) -> GridDesc {
            GridDesc { num_ctas: 2, warps_per_cta: 2 }
        }
        fn warp_stream(&self, cta: usize, warp: usize) -> Box<dyn OpStream> {
            let base = (cta * 64 + warp * 32) as u64 * 128;
            let mut ops = Vec::new();
            for r in 0..self.reps as u64 {
                ops.push(TraceOp::load(0, 1, (0..32).map(|l| base + r * 4096 + l * 4).collect()));
                ops.push(TraceOp::alu(64, 4).with_srcs([1]).with_dst(2).with_active(17));
                ops.push(TraceOp::store(1, vec![base + r * 4096]).with_srcs([2]));
                ops.push(TraceOp::alu(65, 1));
            }
            Box::new(VecStream::new(ops))
        }
    }

    fn assert_same_traces(a: &dyn Kernel, b: &dyn Kernel) {
        assert_eq!(a.grid(), b.grid());
        for cta in 0..a.grid().num_ctas {
            for warp in 0..a.grid().warps_per_cta {
                assert_eq!(
                    materialize(a.warp_stream(cta, warp)),
                    materialize(b.warp_stream(cta, warp)),
                    "warp {cta}/{warp} mismatch"
                );
            }
        }
    }

    #[test]
    fn text_round_trips() {
        let path = tmp("text.trace");
        let toy = Toy { reps: 3 };
        write_text_trace(&path, &toy).unwrap();
        let tk = TraceKernel::open(&path).unwrap();
        assert_eq!(tk.recorded_warps(), 4);
        assert_same_traces(&toy, &tk);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn binary_round_trips() {
        let path = tmp("bin.trace");
        let toy = Toy { reps: 3 };
        write_binary_trace(&path, &toy).unwrap();
        let tk = TraceKernel::open(&path).unwrap();
        assert_same_traces(&toy, &tk);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_header_is_malformed() {
        let path = tmp("nohdr.trace");
        std::fs::write(&path, "grid 1 1\nwarp 0 0\nalu 0 1 32 - - -\n").unwrap();
        assert!(matches!(TraceKernel::open(&path), Err(TraceError::Malformed { .. })));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn bad_op_line_is_malformed() {
        let path = tmp("badop.trace");
        std::fs::write(&path, format!("{TEXT_MAGIC}\ngrid 1 1\nwarp 0 0\nbogus 1 2\n")).unwrap();
        let err = TraceKernel::open(&path).unwrap_err();
        assert!(err.to_string().contains("unknown keyword"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_range_register_is_malformed() {
        let path = tmp("badreg.trace");
        std::fs::write(&path, format!("{TEXT_MAGIC}\ngrid 1 1\nwarp 0 0\nld 0 99 - - 0\n"))
            .unwrap();
        let err = TraceKernel::open(&path).unwrap_err();
        assert!(err.to_string().contains("out of range"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn duplicate_warp_section_is_malformed() {
        let path = tmp("dup.trace");
        std::fs::write(
            &path,
            format!("{TEXT_MAGIC}\ngrid 1 1\nwarp 0 0\nalu 0 1 32 - - -\nwarp 0 0\n"),
        )
        .unwrap();
        let err = TraceKernel::open(&path).unwrap_err();
        assert!(err.to_string().contains("duplicate"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn out_of_grid_warp_is_malformed() {
        let path = tmp("oob.trace");
        std::fs::write(&path, format!("{TEXT_MAGIC}\ngrid 1 1\nwarp 3 0\n")).unwrap();
        let err = TraceKernel::open(&path).unwrap_err();
        assert!(err.to_string().contains("outside the grid"), "{err}");
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn truncated_binary_is_malformed() {
        let path = tmp("trunc.trace");
        write_binary_trace(&path, &Toy { reps: 3 }).unwrap();
        let bytes = std::fs::read(&path).unwrap();
        std::fs::write(&path, &bytes[..bytes.len() - 4]).unwrap();
        assert!(matches!(TraceKernel::open(&path), Err(TraceError::Malformed { .. })));
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn missing_warp_sections_replay_empty() {
        let path = tmp("sparse.trace");
        std::fs::write(&path, format!("{TEXT_MAGIC}\ngrid 2 2\nwarp 1 1\nalu 7 1 32 - - -\n"))
            .unwrap();
        let tk = TraceKernel::open(&path).unwrap();
        assert!(materialize(tk.warp_stream(0, 0)).is_empty());
        assert_eq!(materialize(tk.warp_stream(1, 1)).len(), 1);
        std::fs::remove_file(&path).ok();
    }

    #[test]
    fn chunked_replay_is_bounded_and_resettable() {
        let path = tmp("chunked.trace");
        let toy = Toy { reps: 200 };
        write_text_trace(&path, &toy).unwrap();
        let tk = TraceKernel::open(&path).unwrap();
        let full = materialize(toy.warp_stream(1, 0));
        let total = ops_bytes(&full);
        let mut s = tk.stream(1, 0);
        s.chunk = 512; // force many refills
        let first: Vec<_> = std::iter::from_fn(|| s.next_op()).collect();
        assert_eq!(first, full);
        assert!(
            s.peak_resident_bytes() < total / 4,
            "peak {} vs total {total}: replay must not materialize the section",
            s.peak_resident_bytes()
        );
        s.reset();
        let second: Vec<_> = std::iter::from_fn(|| s.next_op()).collect();
        assert_eq!(first, second);
        std::fs::remove_file(&path).ok();
    }
}
