//! Address-pattern helpers shared by the benchmark models.

use gpu_sim::isa::TraceOp;
use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Bytes per float element (all modeled arrays hold f32).
pub const F4: u64 = 4;

/// A bump allocator for the virtual address space of one kernel, so
/// each array lands in its own naturally aligned region.
pub struct AddrSpace {
    next: u64,
}

impl Default for AddrSpace {
    fn default() -> Self {
        Self::new()
    }
}

impl AddrSpace {
    /// Regions start at 16 MB to keep address arithmetic visibly away
    /// from null.
    pub fn new() -> Self {
        AddrSpace { next: 16 << 20 }
    }

    /// Reserve `bytes`, returning the region base (1 MB aligned so
    /// different arrays never share a cache line or DRAM row).
    pub fn alloc(&mut self, bytes: u64) -> u64 {
        let base = self.next;
        let aligned = bytes.div_ceil(1 << 20) * (1 << 20);
        self.next += aligned;
        base
    }
}

/// Deterministic per-warp RNG: every (kernel seed, cta, warp) triple
/// yields the same stream on every run.
pub fn warp_rng(kernel_seed: u64, cta: usize, warp: usize) -> StdRng {
    let mix = kernel_seed
        .wrapping_mul(0x9e37_79b9_7f4a_7c15)
        .wrapping_add((cta as u64) << 32)
        .wrapping_add(warp as u64 + 1);
    StdRng::seed_from_u64(mix)
}

/// Append 32 unit-stride lane addresses starting at `base` to `out`
/// (fully coalesced: one 128-byte transaction when `base` is line
/// aligned). The `*_into` forms write into caller-owned storage so the
/// streaming hot path reuses one scratch buffer instead of allocating
/// a temporary per call; the only allocation left on that path is the
/// lane vector each `TraceOp::Mem` must own.
pub fn coalesced_into(out: &mut Vec<u64>, base: u64) {
    out.extend((0..32).map(|l| base + l * F4));
}

/// Allocating wrapper over [`coalesced_into`] for single-use sites
/// (the vector moves straight into the op).
pub fn coalesced(base: u64) -> Vec<u64> {
    let mut v = Vec::with_capacity(32);
    coalesced_into(&mut v, base);
    v
}

/// Append 32 lane addresses with a fixed byte stride between lanes.
pub fn strided_into(out: &mut Vec<u64>, base: u64, stride: u64) {
    out.extend((0..32).map(|l| base + l * stride));
}

/// Allocating wrapper over [`strided_into`].
pub fn strided(base: u64, stride: u64) -> Vec<u64> {
    let mut v = Vec::with_capacity(32);
    strided_into(&mut v, base, stride);
    v
}

/// Append 32 copies of one address (a broadcast — one transaction).
pub fn broadcast_into(out: &mut Vec<u64>, addr: u64) {
    out.extend(std::iter::repeat_n(addr, 32));
}

/// Allocating wrapper over [`broadcast_into`].
pub fn broadcast(addr: u64) -> Vec<u64> {
    let mut v = Vec::with_capacity(32);
    broadcast_into(&mut v, addr);
    v
}

/// Append `n` random lane addresses inside `[base, base + bytes)`,
/// 4-byte aligned — a scatter/gather touching up to `n` distinct
/// sectors.
pub fn scatter_into(rng: &mut StdRng, out: &mut Vec<u64>, base: u64, bytes: u64, n: usize) {
    out.extend((0..n).map(|_| base + (rng.gen_range(0..bytes / F4)) * F4));
}

/// Allocating wrapper over [`scatter_into`].
pub fn scatter(rng: &mut StdRng, base: u64, bytes: u64, n: usize) -> Vec<u64> {
    let mut v = Vec::with_capacity(n);
    scatter_into(rng, &mut v, base, bytes, n);
    v
}

/// Push `n` dependent ALU ops (a latency chain consuming `src`), the
/// stand-in for the arithmetic between memory instructions.
pub fn alu_block(ops: &mut Vec<TraceOp>, pc: &mut u32, n: usize, src: u8) {
    for i in 0..n {
        let (s, d) = if i % 2 == 0 { (src, src + 1) } else { (src + 1, src) };
        ops.push(TraceOp::alu(*pc, 4).with_srcs([s]).with_dst(d));
        *pc += 1;
    }
}

/// Spread warps apart in execution phase, the way data-dependent work,
/// divergent control flow and staggered CTA launches do on real
/// hardware: a short chain of long-latency ALU ops whose total latency
/// varies per warp (0 to ~4000 cycles). Without this, the lock-step
/// progress of identical synthetic warps funnels all inter-warp reuse
/// into the MSHR merge window, which no real workload does.
pub fn desync(ops: &mut Vec<TraceOp>, pc: &mut u32, gwarp: u64) {
    let unit = ((gwarp.wrapping_mul(0x9e37_79b9_7f4a_7c15) >> 32) % 64) as u32;
    for i in 0..4u8 {
        let (s, d) = if i % 2 == 0 { (60, 61) } else { (61, 60) };
        ops.push(TraceOp::alu(*pc, unit * 16 + 1).with_srcs([s]).with_dst(d));
        *pc += 1;
    }
}

/// Push `n` independent ALU ops (no cross-op dependences — issue-rate
/// bound work such as unrolled index arithmetic).
pub fn alu_independent(ops: &mut Vec<TraceOp>, pc: &mut u32, n: usize) {
    for _ in 0..n {
        ops.push(TraceOp::alu(*pc, 4));
        *pc += 1;
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn alloc_is_disjoint_and_aligned() {
        let mut a = AddrSpace::new();
        let x = a.alloc(100);
        let y = a.alloc(5 << 20);
        let z = a.alloc(1);
        assert_eq!(x % (1 << 20), 0);
        assert!(y >= x + 100);
        assert!(z >= y + (5 << 20));
    }

    #[test]
    fn warp_rng_is_deterministic_and_distinct() {
        let a: u64 = warp_rng(1, 2, 3).gen();
        let b: u64 = warp_rng(1, 2, 3).gen();
        let c: u64 = warp_rng(1, 2, 4).gen();
        assert_eq!(a, b);
        assert_ne!(a, c);
    }

    #[test]
    fn coalesced_spans_one_line() {
        let addrs = coalesced(0x1000);
        assert_eq!(addrs.len(), 32);
        assert!(addrs.iter().all(|&a| a / 128 == 0x1000 / 128));
    }

    #[test]
    fn broadcast_is_single_address() {
        let addrs = broadcast(0x42c0);
        assert!(addrs.iter().all(|&a| a == 0x42c0));
    }

    #[test]
    fn scatter_stays_in_region() {
        let mut rng = warp_rng(7, 0, 0);
        let addrs = scatter(&mut rng, 0x10000, 4096, 16);
        assert_eq!(addrs.len(), 16);
        assert!(addrs.iter().all(|&a| (0x10000..0x11000).contains(&a)));
    }

    #[test]
    fn into_forms_append_and_match_wrappers() {
        let mut v = vec![7u64];
        coalesced_into(&mut v, 0x1000);
        assert_eq!(v[0], 7, "appends, never clears");
        assert_eq!(&v[1..], coalesced(0x1000).as_slice());
        v.clear();
        strided_into(&mut v, 0x2000, 16);
        assert_eq!(v, strided(0x2000, 16));
        v.clear();
        broadcast_into(&mut v, 0x42c0);
        assert_eq!(v, broadcast(0x42c0));
        // Both scatter forms consume the RNG identically.
        let mut r1 = warp_rng(9, 0, 0);
        let mut r2 = warp_rng(9, 0, 0);
        v.clear();
        scatter_into(&mut r1, &mut v, 0x10000, 4096, 16);
        assert_eq!(v, scatter(&mut r2, 0x10000, 4096, 16));
    }

    #[test]
    fn alu_block_chains_registers() {
        let mut ops = Vec::new();
        let mut pc = 10;
        alu_block(&mut ops, &mut pc, 3, 5);
        assert_eq!(ops.len(), 3);
        assert_eq!(pc, 13);
        assert_eq!(ops[0].srcs[0], 5);
        assert_eq!(ops[0].dst, 6);
        assert_eq!(ops[1].srcs[0], 6);
    }
}
