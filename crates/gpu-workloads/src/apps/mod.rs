//! One module per modeled application (Table 2). Each module documents
//! which properties of the real CUDA benchmark its address stream
//! reproduces; the rationale for the substitution is in DESIGN.md §2.

pub mod bfs;
pub mod bp;
pub mod bt;
pub mod cfd;
pub mod gemm;
pub mod hg;
pub mod hs;
pub mod km;
pub mod mm;
pub mod nw;
pub mod pvr;
pub mod sc;
pub mod sr2k;
pub mod srad;
pub mod srk;
pub mod ss;
pub mod sten;
pub mod str_match;
