//! SRAD — Speckle Reducing Anisotropic Diffusion (Rodinia, Cache
//! Sufficient).
//!
//! A 512×512 image-diffusion kernel: each cell reads its four
//! neighbours and a diffusion-coefficient grid, with a long chain of
//! floating-point work per cell. Row-to-row reuse gives SRAD the short
//! reuse distances and the relatively high L1D hit rate the paper notes
//! in §6.3.1 — which is exactly why Stall-Bypass (which discards those
//! reuses) loses 11 % IPC on it while the protecting schemes do not.

use crate::gen::{GenStream, SegmentSource, WarpCtx};
use crate::pattern::{alu_block, coalesced, desync, AddrSpace};
use crate::registry::Scale;
use gpu_sim::isa::TraceOp;
use gpu_sim::{GridDesc, Kernel, OpStream};

/// SRAD model. See the module docs.
#[derive(Clone)]
pub struct Srad {
    ctas: usize,
    warps: usize,
    rows: usize,
    image: u64,
    coeff: u64,
    out: u64,
    row_bytes: u64,
}

impl Srad {
    /// Build at the given scale.
    pub fn new(scale: Scale) -> Self {
        let (ctas, warps, rows) = match scale {
            Scale::Tiny => (4, 2, 8),
            Scale::Full | Scale::Scaled(_) => (64, 6, 44),
        };
        let rows = rows * scale.factor() as usize;
        let mut mem = AddrSpace::new();
        let row_bytes = 512 * 4;
        // Grids grow with the scale factor so the deeper row walk stays
        // inside its own region.
        let grid_bytes = 512 * row_bytes * scale.factor();
        Srad {
            ctas,
            warps,
            rows,
            image: mem.alloc(grid_bytes),
            coeff: mem.alloc(grid_bytes),
            out: mem.alloc(grid_bytes),
            row_bytes,
        }
    }
}

impl Kernel for Srad {
    fn name(&self) -> &str {
        "SRAD"
    }

    fn grid(&self) -> GridDesc {
        GridDesc { num_ctas: self.ctas, warps_per_cta: self.warps }
    }

    fn warp_stream(&self, cta: usize, warp: usize) -> Box<dyn OpStream> {
        Box::new(GenStream::new(SradGen { app: self.clone(), ctx: WarpCtx::new(0, cta, warp) }))
    }
}

/// Segment 0 = desync prologue; segment 1 + r = row `r` of the strip.
struct SradGen {
    app: Srad,
    ctx: WarpCtx,
}

impl SegmentSource for SradGen {
    fn emit(&mut self, seg: u64, out: &mut Vec<TraceOp>) -> bool {
        let strips = 512 / 32;
        let gwarp = self.ctx.cta * self.app.warps + self.ctx.warp;
        if seg == 0 {
            desync(out, &mut self.ctx.apc, gwarp as u64);
            return true;
        }
        let r = seg - 1;
        if r >= self.app.rows as u64 {
            return false;
        }
        let col = ((gwarp % strips) * 32) as u64 * 4;
        let row0 = (gwarp / strips * self.app.rows) as u64 % 500;
        let rb = 1 + ((r % 2) as u8) * 8;
        let center = self.app.image + (row0 + r + 1) * self.app.row_bytes + col;
        out.push(TraceOp::load(0, rb, coalesced(center)));
        out.push(TraceOp::load(1, rb + 2, coalesced(center - self.app.row_bytes)));
        out.push(TraceOp::load(2, rb + 4, coalesced(center + self.app.row_bytes)));
        out.push(TraceOp::load(3, rb + 6, coalesced(self.app.coeff + (row0 + r + 1) * self.app.row_bytes + col)));
        alu_block(out, &mut self.ctx.apc, 26, rb);
        out.push(
            TraceOp::store(4, coalesced(self.app.out + (row0 + r + 1) * self.app.row_bytes + col))
                .with_srcs([rb + 2]),
        );
        true
    }

    fn reset(&mut self) {
        self.ctx.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::static_mem_ratio;

    #[test]
    fn is_cache_sufficient() {
        assert!(static_mem_ratio(&Srad::new(Scale::Tiny)) < 0.01);
    }

    #[test]
    fn neighbour_rows_overlap_between_iterations() {
        use gpu_sim::isa::OpKind;
        let k = Srad::new(Scale::Tiny);
        let ops = k.warp_ops(0, 0);
        let lines: Vec<_> = ops
            .iter()
            .filter_map(|o| match &o.kind {
                OpKind::Mem { addrs, is_write: false } => Some((o.pc, addrs[0] / 128)),
                _ => None,
            })
            .collect();
        // "down" of iteration 0 (pc2) == "center" of iteration 1 (pc0).
        let down0 = lines.iter().find(|(pc, _)| *pc == 2).unwrap().1;
        let center1 = lines.iter().filter(|(pc, _)| *pc == 0).nth(1).unwrap().1;
        assert_eq!(down0, center1);
    }
}
