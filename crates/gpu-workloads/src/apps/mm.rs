//! MM — Matrix Multiplication (Mars, 256×256, Cache Insufficient).
//!
//! Mars' MapReduce matrix multiply is the *untiled* classroom kernel:
//! thread (i,j) walks k, loading `A[i][k]` (a per-warp broadcast whose
//! line is reused for 32 consecutive k's — very short RD) and `B[k][j]`
//! (one coalesced line per k, revisited only when another warp with the
//! same j-block reaches the same k — mid/long RD). The result is the
//! spread-across-all-buckets RDD the paper reports for MM in §3.1
//! (19.5 / 35.8 / 33.2 / 11.5 % across the four ranges).

use crate::gen::{GenStream, SegmentSource, WarpCtx};
use crate::pattern::{coalesced, desync, AddrSpace, F4};
use crate::registry::Scale;
use gpu_sim::isa::TraceOp;
use gpu_sim::{GridDesc, Kernel, OpStream};

/// Untiled matrix-multiply model. See the module docs.
#[derive(Clone)]
pub struct Mm {
    ctas: usize,
    warps: usize,
    n: u64,
    ksteps: usize,
    a: u64,
    b: u64,
    c: u64,
}

impl Mm {
    /// Build at the given scale.
    pub fn new(scale: Scale) -> Self {
        let (ctas, warps, ksteps) = match scale {
            Scale::Tiny => (8, 4, 160),
            Scale::Full | Scale::Scaled(_) => (96, 6, 96),
        };
        let ksteps = ksteps * scale.factor() as usize;
        let n = 256u64;
        let mut mem = AddrSpace::new();
        Mm {
            ctas,
            warps,
            n,
            ksteps,
            a: mem.alloc(n * n * F4),
            b: mem.alloc(n * n * F4),
            c: mem.alloc(n * n * F4),
        }
    }
}

impl Kernel for Mm {
    fn name(&self) -> &str {
        "MM"
    }

    fn grid(&self) -> GridDesc {
        GridDesc { num_ctas: self.ctas, warps_per_cta: self.warps }
    }

    fn warp_stream(&self, cta: usize, warp: usize) -> Box<dyn OpStream> {
        Box::new(GenStream::new(MmGen { app: self.clone(), ctx: WarpCtx::new(0, cta, warp) }))
    }
}

/// Segment 0 = desync prologue; segment 1 + n = the unroll-and-jam
/// group starting at k-step `4n`; one final segment = the C store.
struct MmGen {
    app: Mm,
    ctx: WarpCtx,
}

impl SegmentSource for MmGen {
    fn emit(&mut self, seg: u64, out: &mut Vec<TraceOp>) -> bool {
        let gwarp = (self.ctx.cta * self.app.warps + self.ctx.warp) as u64;
        if seg == 0 {
            desync(out, &mut self.ctx.apc, gwarp);
            return true;
        }
        // Warp computes C[i][j0..j0+32); i and j-block derived from id.
        let jblocks = self.app.n / 32;
        let i = gwarp % self.app.n;
        let j0 = (self.ctx.cta as u64 % jblocks) * 32;
        let row_bytes = self.app.n * F4;
        let k0 = (gwarp * 7) % self.app.n; // stagger start to spread B reuse
        let ksteps = self.app.ksteps as u64;
        let ngroups = ksteps.div_ceil(4);
        let step = (seg - 1) * 4;
        if seg - 1 < ngroups {
            // The A row is staged once per 32-k tile (the kernel keeps
            // it in registers/shared memory), so the L1D only sees the
            // B stream — whose lines recur when other warps with the
            // same j-block reach the same k, at set distances beyond
            // plain LRU.
            if step % 32 == 0 {
                let k = (k0 + step) % self.app.n;
                out.push(TraceOp::load(0, 20, coalesced(self.app.a + i * row_bytes + (k / 32) * 128)));
            }
            let group = (ksteps - step).min(4);
            for g in 0..group {
                let rb = 1 + (g as u8) * 4;
                let k = (k0 + step + g) % self.app.n;
                out.push(TraceOp::load(1, rb, coalesced(self.app.b + k * row_bytes + j0 * F4)));
            }
            for g in 0..group {
                let rb = 1 + (g as u8) * 4;
                out.push(TraceOp::alu(64, 4).with_srcs([rb, 20]).with_dst(rb + 1));
                out.push(TraceOp::alu(64, 4).with_srcs([rb + 1]).with_dst(rb + 2));
            }
            return true;
        }
        if seg - 1 == ngroups {
            out.push(TraceOp::store(2, coalesced(self.app.c + i * row_bytes + j0 * F4)).with_srcs([3]));
            return true;
        }
        false
    }

    fn reset(&mut self) {
        self.ctx.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::static_mem_ratio;
    use gpu_sim::isa::OpKind;

    #[test]
    fn is_cache_insufficient() {
        let r = static_mem_ratio(&Mm::new(Scale::Tiny));
        assert!(r >= 0.01, "MM ratio {r:.4}");
    }

    #[test]
    fn a_tile_is_staged_once_per_32_ksteps() {
        let k = Mm::new(Scale::Tiny);
        let a_loads = k
            .warp_ops(0, 0)
            .iter()
            .filter(|o| o.pc == 0 && o.is_mem())
            .count();
        assert_eq!(a_loads, k.ksteps.div_ceil(32));
    }

    #[test]
    fn b_lines_change_every_k() {
        let k = Mm::new(Scale::Tiny);
        let lines: Vec<u64> = k
            .warp_ops(0, 0)
            .iter()
            .filter_map(|o| match &o.kind {
                OpKind::Mem { addrs, is_write: false } if o.pc == 1 => Some(addrs[0] / 128),
                _ => None,
            })
            .collect();
        let distinct: std::collections::HashSet<_> = lines.iter().collect();
        assert_eq!(distinct.len(), lines.len(), "each k reads a fresh B line");
    }
}
