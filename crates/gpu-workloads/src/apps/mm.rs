//! MM — Matrix Multiplication (Mars, 256×256, Cache Insufficient).
//!
//! Mars' MapReduce matrix multiply is the *untiled* classroom kernel:
//! thread (i,j) walks k, loading `A[i][k]` (a per-warp broadcast whose
//! line is reused for 32 consecutive k's — very short RD) and `B[k][j]`
//! (one coalesced line per k, revisited only when another warp with the
//! same j-block reaches the same k — mid/long RD). The result is the
//! spread-across-all-buckets RDD the paper reports for MM in §3.1
//! (19.5 / 35.8 / 33.2 / 11.5 % across the four ranges).

use crate::pattern::{AddrSpace, F4, coalesced, desync};
use crate::registry::Scale;
use gpu_sim::isa::TraceOp;
use gpu_sim::{GridDesc, Kernel};

/// Untiled matrix-multiply model. See the module docs.
pub struct Mm {
    ctas: usize,
    warps: usize,
    n: u64,
    ksteps: usize,
    a: u64,
    b: u64,
    c: u64,
}

impl Mm {
    /// Build at the given scale.
    pub fn new(scale: Scale) -> Self {
        let (ctas, warps, ksteps) = match scale {
            Scale::Tiny => (8, 4, 160),
            Scale::Full => (96, 6, 96),
        };
        let n = 256u64;
        let mut mem = AddrSpace::new();
        Mm {
            ctas,
            warps,
            n,
            ksteps,
            a: mem.alloc(n * n * F4),
            b: mem.alloc(n * n * F4),
            c: mem.alloc(n * n * F4),
        }
    }
}

impl Kernel for Mm {
    fn name(&self) -> &str {
        "MM"
    }

    fn grid(&self) -> GridDesc {
        GridDesc { num_ctas: self.ctas, warps_per_cta: self.warps }
    }

    fn warp_ops(&self, cta: usize, warp: usize) -> Vec<TraceOp> {
        let mut ops = Vec::new();
        let mut apc = 64;
        let gwarp = (cta * self.warps + warp) as u64;
        desync(&mut ops, &mut apc, gwarp);
        // Warp computes C[i][j0..j0+32); i and j-block derived from id.
        let jblocks = self.n / 32;
        let i = gwarp % self.n;
        let j0 = (cta as u64 % jblocks) * 32;
        let row_bytes = self.n * F4;
        let k0 = (gwarp * 7) % self.n; // stagger start to spread B reuse
        // The A row is staged once per 32-k tile (the kernel keeps it in
        // registers/shared memory), so the L1D only sees the B stream —
        // whose lines recur when other warps with the same j-block reach
        // the same k, at set distances beyond plain LRU.
        let mut step = 0u64;
        while step < self.ksteps as u64 {
            if step % 32 == 0 {
                let k = (k0 + step) % self.n;
                ops.push(TraceOp::load(0, 20, coalesced(self.a + i * row_bytes + (k / 32) * 128)));
            }
            let group = (self.ksteps as u64 - step).min(4);
            for g in 0..group {
                let rb = 1 + (g as u8) * 4;
                let k = (k0 + step + g) % self.n;
                ops.push(TraceOp::load(1, rb, coalesced(self.b + k * row_bytes + j0 * F4)));
            }
            for g in 0..group {
                let rb = 1 + (g as u8) * 4;
                ops.push(TraceOp::alu(64, 4).with_srcs([rb, 20]).with_dst(rb + 1));
                ops.push(TraceOp::alu(64, 4).with_srcs([rb + 1]).with_dst(rb + 2));
            }
            step += group;
        }
        ops.push(TraceOp::store(2, coalesced(self.c + i * row_bytes + j0 * F4)).with_srcs([3]));
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::static_mem_ratio;
    use gpu_sim::isa::OpKind;

    #[test]
    fn is_cache_insufficient() {
        let r = static_mem_ratio(&Mm::new(Scale::Tiny));
        assert!(r >= 0.01, "MM ratio {r:.4}");
    }

    #[test]
    fn a_tile_is_staged_once_per_32_ksteps() {
        let k = Mm::new(Scale::Tiny);
        let a_loads = k
            .warp_ops(0, 0)
            .iter()
            .filter(|o| o.pc == 0 && o.is_mem())
            .count();
        assert_eq!(a_loads, k.ksteps.div_ceil(32));
    }

    #[test]
    fn b_lines_change_every_k() {
        let k = Mm::new(Scale::Tiny);
        let lines: Vec<u64> = k
            .warp_ops(0, 0)
            .iter()
            .filter_map(|o| match &o.kind {
                OpKind::Mem { addrs, is_write: false } if o.pc == 1 => Some(addrs[0] / 128),
                _ => None,
            })
            .collect();
        let distinct: std::collections::HashSet<_> = lines.iter().collect();
        assert_eq!(distinct.len(), lines.len(), "each k reads a fresh B line");
    }
}
