//! SRK — Symmetric Rank-k update (Polybench, 256×256, Cache
//! Insufficient).
//!
//! `C[i][j] += A[i][k] * A[j][k]`: thread (i,j) broadcasts `A[i][k]`
//! (short RD) and gathers `A[j][k]` down a column of A — 32 row-strided
//! transactions per k whose lines each serve 32 consecutive k's. One
//! warp's strided working set is 32 lines; with tens of warps resident
//! the interleaved set-level distances land beyond 4-way LRU but within
//! protection reach — the classic inter-warp thrashing DLP recovers.

use crate::gen::{GenStream, SegmentSource, WarpCtx};
use crate::pattern::{AddrSpace, F4, coalesced, desync, strided};
use crate::registry::Scale;
use gpu_sim::isa::TraceOp;
use gpu_sim::{GridDesc, Kernel, OpStream};

/// Symmetric rank-k model. See the module docs.
#[derive(Clone)]
pub struct Srk {
    ctas: usize,
    warps: usize,
    n: u64,
    ksteps: usize,
    a: u64,
    c: u64,
}

impl Srk {
    /// Build at the given scale.
    pub fn new(scale: Scale) -> Self {
        let (ctas, warps, ksteps) = match scale {
            Scale::Tiny => (8, 4, 24),
            Scale::Full | Scale::Scaled(_) => (64, 6, 64),
        };
        let ksteps = ksteps * scale.factor() as usize;
        let n = 256u64;
        let mut mem = AddrSpace::new();
        Srk { ctas, warps, n, ksteps, a: mem.alloc(n * n * F4), c: mem.alloc(n * n * F4) }
    }
}

impl Kernel for Srk {
    fn name(&self) -> &str {
        "SRK"
    }

    fn grid(&self) -> GridDesc {
        GridDesc { num_ctas: self.ctas, warps_per_cta: self.warps }
    }

    fn warp_stream(&self, cta: usize, warp: usize) -> Box<dyn OpStream> {
        Box::new(GenStream::new(SrkGen { app: self.clone(), ctx: WarpCtx::new(0, cta, warp) }))
    }
}

/// Segment 0 = desync prologue; segment 1 + n = the unroll-and-jam
/// group starting at k-step `3n`; one final segment = the C store.
struct SrkGen {
    app: Srk,
    ctx: WarpCtx,
}

impl SegmentSource for SrkGen {
    fn emit(&mut self, seg: u64, out: &mut Vec<TraceOp>) -> bool {
        let gwarp = (self.ctx.cta * self.app.warps + self.ctx.warp) as u64;
        if seg == 0 {
            desync(out, &mut self.ctx.apc, gwarp);
            return true;
        }
        let row_bytes = self.app.n * F4;
        let i = gwarp % self.app.n;
        let j0 = (self.ctx.cta as u64 * 32) % self.app.n;
        let ksteps = self.app.ksteps as u64;
        let ngroups = ksteps.div_ceil(3);
        let step = (seg - 1) * 3;
        if seg - 1 < ngroups {
            // The A[i][*] row segment is staged once per 32-k tile; the
            // L1D sees the A[j][*] column gather, whose lines are
            // re-read both across this warp's k-steps (one line spans 32
            // k's) and by the other warps sharing the j-block.
            if step % 32 == 0 {
                let k = (gwarp % 8 + step * 8) % self.app.n;
                out.push(TraceOp::load(0, 20, coalesced(self.app.a + i * row_bytes + (k / 32) * 128)));
            }
            let group = (ksteps - step).min(3);
            for g in 0..group {
                let rb = 1 + (g as u8) * 6;
                let k = (gwarp % 8 + (step + g) * 8) % self.app.n;
                // A[j][k] for j = j0..j0+32: column gather, one line per row.
                out.push(TraceOp::load(1, rb, strided(self.app.a + j0 * row_bytes + k * F4, row_bytes)));
            }
            for g in 0..group {
                let rb = 1 + (g as u8) * 6;
                out.push(TraceOp::alu(64, 4).with_srcs([rb, 20]).with_dst(rb + 1));
                out.push(TraceOp::alu(64, 4).with_srcs([rb + 1]).with_dst(rb + 2));
                out.push(TraceOp::alu(64, 4).with_srcs([rb + 2]).with_dst(rb + 3));
                out.push(TraceOp::alu(64, 4).with_srcs([rb + 3]).with_dst(rb + 4));
                out.push(TraceOp::alu(64, 4).with_srcs([rb + 4]).with_dst(rb + 5));
            }
            return true;
        }
        if seg - 1 == ngroups {
            out.push(TraceOp::store(2, strided(self.app.c + i * row_bytes + j0 * F4, F4)).with_srcs([3]));
            return true;
        }
        false
    }

    fn reset(&mut self) {
        self.ctx.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::static_mem_ratio;
    use gpu_sim::isa::OpKind;

    #[test]
    fn is_cache_insufficient() {
        let r = static_mem_ratio(&Srk::new(Scale::Tiny));
        assert!(r >= 0.01, "SRK ratio {r:.4}");
    }

    #[test]
    fn column_gather_touches_32_distinct_lines() {
        let k = Srk::new(Scale::Tiny);
        let op = k
            .warp_ops(0, 0)
            .into_iter()
            .find(|o| o.pc == 1 && o.is_mem())
            .unwrap();
        match &op.kind {
            OpKind::Mem { addrs, .. } => {
                let lines: std::collections::HashSet<_> = addrs.iter().map(|a| a / 128).collect();
                assert_eq!(lines.len(), 32);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn gather_lines_recur_across_k_steps() {
        let k = Srk::new(Scale::Tiny);
        let mut all = Vec::new();
        for op in k.warp_ops(0, 0) {
            if let OpKind::Mem { addrs, is_write: false } = &op.kind {
                if op.pc == 1 {
                    all.extend(addrs.iter().map(|a| a / 128));
                }
            }
        }
        let distinct: std::collections::HashSet<_> = all.iter().collect();
        assert!(distinct.len() < all.len(), "strided lines must be re-read");
    }
}
