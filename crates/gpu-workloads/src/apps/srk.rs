//! SRK — Symmetric Rank-k update (Polybench, 256×256, Cache
//! Insufficient).
//!
//! `C[i][j] += A[i][k] * A[j][k]`: thread (i,j) broadcasts `A[i][k]`
//! (short RD) and gathers `A[j][k]` down a column of A — 32 row-strided
//! transactions per k whose lines each serve 32 consecutive k's. One
//! warp's strided working set is 32 lines; with tens of warps resident
//! the interleaved set-level distances land beyond 4-way LRU but within
//! protection reach — the classic inter-warp thrashing DLP recovers.

use crate::pattern::{AddrSpace, F4, coalesced, desync, strided};
use crate::registry::Scale;
use gpu_sim::isa::TraceOp;
use gpu_sim::{GridDesc, Kernel};

/// Symmetric rank-k model. See the module docs.
pub struct Srk {
    ctas: usize,
    warps: usize,
    n: u64,
    ksteps: usize,
    a: u64,
    c: u64,
}

impl Srk {
    /// Build at the given scale.
    pub fn new(scale: Scale) -> Self {
        let (ctas, warps, ksteps) = match scale {
            Scale::Tiny => (8, 4, 24),
            Scale::Full => (64, 6, 64),
        };
        let n = 256u64;
        let mut mem = AddrSpace::new();
        Srk { ctas, warps, n, ksteps, a: mem.alloc(n * n * F4), c: mem.alloc(n * n * F4) }
    }
}

impl Kernel for Srk {
    fn name(&self) -> &str {
        "SRK"
    }

    fn grid(&self) -> GridDesc {
        GridDesc { num_ctas: self.ctas, warps_per_cta: self.warps }
    }

    fn warp_ops(&self, cta: usize, warp: usize) -> Vec<TraceOp> {
        let mut ops = Vec::new();
        let mut apc = 64;
        let gwarp = (cta * self.warps + warp) as u64;
        desync(&mut ops, &mut apc, gwarp);
        let row_bytes = self.n * F4;
        let i = gwarp % self.n;
        let j0 = (cta as u64 * 32) % self.n;
        // The A[i][*] row segment is staged once per 32-k tile; the L1D
        // sees the A[j][*] column gather, whose lines are re-read both
        // across this warp's k-steps (one line spans 32 k's) and by the
        // other warps sharing the j-block.
        let mut step = 0u64;
        while step < self.ksteps as u64 {
            if step % 32 == 0 {
                let k = (gwarp % 8 + step * 8) % self.n;
                ops.push(TraceOp::load(0, 20, coalesced(self.a + i * row_bytes + (k / 32) * 128)));
            }
            let group = (self.ksteps as u64 - step).min(3);
            for g in 0..group {
                let rb = 1 + (g as u8) * 6;
                let k = (gwarp % 8 + (step + g) * 8) % self.n;
                // A[j][k] for j = j0..j0+32: column gather, one line per row.
                ops.push(TraceOp::load(1, rb, strided(self.a + j0 * row_bytes + k * F4, row_bytes)));
            }
            for g in 0..group {
                let rb = 1 + (g as u8) * 6;
                ops.push(TraceOp::alu(64, 4).with_srcs([rb, 20]).with_dst(rb + 1));
                ops.push(TraceOp::alu(64, 4).with_srcs([rb + 1]).with_dst(rb + 2));
                ops.push(TraceOp::alu(64, 4).with_srcs([rb + 2]).with_dst(rb + 3));
                ops.push(TraceOp::alu(64, 4).with_srcs([rb + 3]).with_dst(rb + 4));
                ops.push(TraceOp::alu(64, 4).with_srcs([rb + 4]).with_dst(rb + 5));
            }
            step += group;
        }
        ops.push(TraceOp::store(2, strided(self.c + i * row_bytes + j0 * F4, F4)).with_srcs([3]));
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::static_mem_ratio;
    use gpu_sim::isa::OpKind;

    #[test]
    fn is_cache_insufficient() {
        let r = static_mem_ratio(&Srk::new(Scale::Tiny));
        assert!(r >= 0.01, "SRK ratio {r:.4}");
    }

    #[test]
    fn column_gather_touches_32_distinct_lines() {
        let k = Srk::new(Scale::Tiny);
        let op = k
            .warp_ops(0, 0)
            .into_iter()
            .find(|o| o.pc == 1 && o.is_mem())
            .unwrap();
        match &op.kind {
            OpKind::Mem { addrs, .. } => {
                let lines: std::collections::HashSet<_> = addrs.iter().map(|a| a / 128).collect();
                assert_eq!(lines.len(), 32);
            }
            _ => unreachable!(),
        }
    }

    #[test]
    fn gather_lines_recur_across_k_steps() {
        let k = Srk::new(Scale::Tiny);
        let mut all = Vec::new();
        for op in k.warp_ops(0, 0) {
            if let OpKind::Mem { addrs, is_write: false } = &op.kind {
                if op.pc == 1 {
                    all.extend(addrs.iter().map(|a| a / 128));
                }
            }
        }
        let distinct: std::collections::HashSet<_> = all.iter().collect();
        assert!(distinct.len() < all.len(), "strided lines must be re-read");
    }
}
