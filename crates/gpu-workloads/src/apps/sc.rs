//! SC — Separable Convolution (Cache Sufficient).
//!
//! A row-filter pass over a 2048×512 image with radius 8: the input
//! window of one 32-pixel output segment overlaps the next segment's
//! window, so the "right" line of iteration *i* is re-read as the
//! "left" line of iteration *i+1* — the short-reuse-distance profile
//! Figure 3 shows for SC, fully captured even by a 4-way L1D.

use crate::gen::{GenStream, SegmentSource, WarpCtx};
use crate::pattern::{alu_block, coalesced, desync, AddrSpace};
use crate::registry::Scale;
use gpu_sim::isa::TraceOp;
use gpu_sim::{GridDesc, Kernel, OpStream};

/// Separable-convolution model. See the module docs.
#[derive(Clone)]
pub struct Sc {
    ctas: usize,
    warps: usize,
    iters: usize,
    input: u64,
    output: u64,
    row_bytes: u64,
}

impl Sc {
    /// Build at the given scale.
    pub fn new(scale: Scale) -> Self {
        let (ctas, warps, iters) = match scale {
            Scale::Tiny => (4, 2, 8),
            Scale::Full | Scale::Scaled(_) => (64, 6, 48),
        };
        let iters = iters * scale.factor() as usize;
        let mut mem = AddrSpace::new();
        let row_bytes = 2048 * 4;
        Sc { ctas, warps, iters, input: mem.alloc(512 * row_bytes), output: mem.alloc(512 * row_bytes), row_bytes }
    }
}

impl Kernel for Sc {
    fn name(&self) -> &str {
        "SC"
    }

    fn grid(&self) -> GridDesc {
        GridDesc { num_ctas: self.ctas, warps_per_cta: self.warps }
    }

    fn warp_stream(&self, cta: usize, warp: usize) -> Box<dyn OpStream> {
        Box::new(GenStream::new(ScGen { app: self.clone(), ctx: WarpCtx::new(0, cta, warp) }))
    }
}

/// Segment 0 = desync prologue; segment 1 + i = row segment `i`.
struct ScGen {
    app: Sc,
    ctx: WarpCtx,
}

impl SegmentSource for ScGen {
    fn emit(&mut self, seg: u64, out: &mut Vec<TraceOp>) -> bool {
        let gwarp = (self.ctx.cta * self.app.warps + self.ctx.warp) as u64;
        if seg == 0 {
            desync(out, &mut self.ctx.apc, gwarp);
            return true;
        }
        let i = seg - 1;
        if i >= self.app.iters as u64 {
            return false;
        }
        let row = gwarp % 512;
        let seg0 = gwarp / 512;
        // Walk along the row; each segment reads its own line plus
        // the next line (the filter halo), which the next iteration
        // re-reads as its center.
        let x = ((seg0 * self.app.iters as u64 + i) * 128) % (self.app.row_bytes - 256);
        let rb = 1 + ((i % 2) as u8) * 8;
        let center = self.app.input + row * self.app.row_bytes + x;
        out.push(TraceOp::load(0, rb, coalesced(center)));
        out.push(TraceOp::load(1, rb + 2, coalesced(center + 128)));
        alu_block(out, &mut self.ctx.apc, 22, rb);
        out.push(TraceOp::store(2, coalesced(self.app.output + row * self.app.row_bytes + x)).with_srcs([rb + 2]));
        true
    }

    fn reset(&mut self) {
        self.ctx.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::static_mem_ratio;
    use gpu_sim::isa::OpKind;

    #[test]
    fn is_cache_sufficient() {
        assert!(static_mem_ratio(&Sc::new(Scale::Tiny)) < 0.01);
    }

    #[test]
    fn halo_line_is_next_iterations_center() {
        let k = Sc::new(Scale::Tiny);
        let ops = k.warp_ops(0, 0);
        let mems: Vec<_> = ops
            .iter()
            .filter_map(|o| match &o.kind {
                OpKind::Mem { addrs, is_write: false } => Some((o.pc, addrs[0] / 128)),
                _ => None,
            })
            .collect();
        // pc1 of iteration 0 == pc0 of iteration 1.
        assert_eq!(mems[1].0, 1);
        assert_eq!(mems[2].0, 0);
        assert_eq!(mems[1].1, mems[2].1);
    }
}
