//! SC — Separable Convolution (Cache Sufficient).
//!
//! A row-filter pass over a 2048×512 image with radius 8: the input
//! window of one 32-pixel output segment overlaps the next segment's
//! window, so the "right" line of iteration *i* is re-read as the
//! "left" line of iteration *i+1* — the short-reuse-distance profile
//! Figure 3 shows for SC, fully captured even by a 4-way L1D.

use crate::pattern::{desync, alu_block, coalesced, AddrSpace};
use crate::registry::Scale;
use gpu_sim::isa::TraceOp;
use gpu_sim::{GridDesc, Kernel};

/// Separable-convolution model. See the module docs.
pub struct Sc {
    ctas: usize,
    warps: usize,
    iters: usize,
    input: u64,
    output: u64,
    row_bytes: u64,
}

impl Sc {
    /// Build at the given scale.
    pub fn new(scale: Scale) -> Self {
        let (ctas, warps, iters) = match scale {
            Scale::Tiny => (4, 2, 8),
            Scale::Full => (64, 6, 48),
        };
        let mut mem = AddrSpace::new();
        let row_bytes = 2048 * 4;
        Sc { ctas, warps, iters, input: mem.alloc(512 * row_bytes), output: mem.alloc(512 * row_bytes), row_bytes }
    }
}

impl Kernel for Sc {
    fn name(&self) -> &str {
        "SC"
    }

    fn grid(&self) -> GridDesc {
        GridDesc { num_ctas: self.ctas, warps_per_cta: self.warps }
    }

    fn warp_ops(&self, cta: usize, warp: usize) -> Vec<TraceOp> {
        let mut ops = Vec::new();
        let mut apc = 64;
        let gwarp = (cta * self.warps + warp) as u64;
        desync(&mut ops, &mut apc, gwarp);
        let row = gwarp % 512;
        let seg0 = gwarp / 512;
        for i in 0..self.iters as u64 {
            // Walk along the row; each segment reads its own line plus
            // the next line (the filter halo), which the next iteration
            // re-reads as its center.
            let x = ((seg0 * self.iters as u64 + i) * 128) % (self.row_bytes - 256);
            let rb = 1 + ((i % 2) as u8) * 8;
            let center = self.input + row * self.row_bytes + x;
            ops.push(TraceOp::load(0, rb, coalesced(center)));
            ops.push(TraceOp::load(1, rb + 2, coalesced(center + 128)));
            alu_block(&mut ops, &mut apc, 22, rb);
            ops.push(TraceOp::store(2, coalesced(self.output + row * self.row_bytes + x)).with_srcs([rb + 2]));
        }
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::static_mem_ratio;
    use gpu_sim::isa::OpKind;

    #[test]
    fn is_cache_sufficient() {
        assert!(static_mem_ratio(&Sc::new(Scale::Tiny)) < 0.01);
    }

    #[test]
    fn halo_line_is_next_iterations_center() {
        let k = Sc::new(Scale::Tiny);
        let ops = k.warp_ops(0, 0);
        let mems: Vec<_> = ops
            .iter()
            .filter_map(|o| match &o.kind {
                OpKind::Mem { addrs, is_write: false } => Some((o.pc, addrs[0] / 128)),
                _ => None,
            })
            .collect();
        // pc1 of iteration 0 == pc0 of iteration 1.
        assert_eq!(mems[1].0, 1);
        assert_eq!(mems[2].0, 0);
        assert_eq!(mems[1].1, mems[2].1);
    }
}
