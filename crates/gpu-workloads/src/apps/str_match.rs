//! STR — String Match (Mars, Cache Insufficient).
//!
//! Grep-style keyword matching over a 354984-record corpus: text is
//! streamed (two lines per chunk), and every chunk probes the keyword
//! hash table. The table (16 KB of buckets + 16 KB of keyword data) is
//! right at the baseline capacity, and STR has the highest
//! memory-access ratio of the suite (rightmost bar of Figure 6), so the
//! L1D is on the critical path for nearly every instruction.

use crate::gen::{GenStream, SegmentSource, WarpCtx};
use crate::pattern::{alu_block, coalesced, desync, scatter, AddrSpace};
use crate::registry::Scale;
use gpu_sim::isa::TraceOp;
use gpu_sim::{GridDesc, Kernel, OpStream};

/// String-match model. See the module docs.
#[derive(Clone)]
pub struct StrMatch {
    ctas: usize,
    warps: usize,
    iters: usize,
    text: u64,
    buckets: u64,
    bucket_bytes: u64,
    keywords: u64,
    keyword_bytes: u64,
    matches: u64,
    seed: u64,
}

impl StrMatch {
    /// Build at the given scale.
    pub fn new(scale: Scale) -> Self {
        let (ctas, warps, iters) = match scale {
            Scale::Tiny => (8, 4, 12),
            Scale::Full | Scale::Scaled(_) => (96, 6, 32),
        };
        let iters = iters * scale.factor() as usize;
        let mut mem = AddrSpace::new();
        StrMatch {
            ctas,
            warps,
            iters,
            // The streamed text grows with the scale factor so the
            // longer chunk walk stays inside its own region.
            text: mem.alloc((64 << 20) * scale.factor()),
            buckets: mem.alloc(16 << 10),
            bucket_bytes: 16 << 10,
            keywords: mem.alloc(16 << 10),
            keyword_bytes: 16 << 10,
            matches: mem.alloc(1 << 20),
            seed: 0x5354,
        }
    }
}

impl Kernel for StrMatch {
    fn name(&self) -> &str {
        "STR"
    }

    fn grid(&self) -> GridDesc {
        GridDesc { num_ctas: self.ctas, warps_per_cta: self.warps }
    }

    fn warp_stream(&self, cta: usize, warp: usize) -> Box<dyn OpStream> {
        Box::new(GenStream::new(StrGen { app: self.clone(), ctx: WarpCtx::new(self.seed, cta, warp) }))
    }
}

/// Segment 0 = desync prologue; segment 1 + i = text chunk `i`.
struct StrGen {
    app: StrMatch,
    ctx: WarpCtx,
}

impl SegmentSource for StrGen {
    fn emit(&mut self, seg: u64, out: &mut Vec<TraceOp>) -> bool {
        let gwarp = (self.ctx.cta * self.app.warps + self.ctx.warp) as u64;
        if seg == 0 {
            desync(out, &mut self.ctx.apc, gwarp);
            return true;
        }
        let i = seg - 1;
        if i >= self.app.iters as u64 {
            return false;
        }
        // Stream a text chunk.
        let rb = 1 + ((i % 2) as u8) * 8;
        let chunk = self.app.text + (gwarp * self.app.iters as u64 + i) * 256;
        out.push(TraceOp::load(0, rb, coalesced(chunk)));
        out.push(TraceOp::load(1, rb + 1, coalesced(chunk + 128)));
        alu_block(out, &mut self.ctx.apc, 2, rb);
        // Hash-bucket probe for each lane's shingle.
        let probes = scatter(&mut self.ctx.rng, self.app.buckets, self.app.bucket_bytes, 16);
        out.push(TraceOp::load(2, rb + 2, probes));
        // Compare against candidate keywords.
        let kws = scatter(&mut self.ctx.rng, self.app.keywords, self.app.keyword_bytes, 8);
        out.push(TraceOp::load(3, rb + 3, kws));
        alu_block(out, &mut self.ctx.apc, 2, rb + 2);
        if i % 4 == 3 {
            out.push(TraceOp::store(4, coalesced(self.app.matches + gwarp * 128)).with_srcs([rb + 3]));
        }
        true
    }

    fn reset(&mut self) {
        self.ctx.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::static_mem_ratio;

    #[test]
    fn is_cache_insufficient_with_high_ratio() {
        let r = static_mem_ratio(&StrMatch::new(Scale::Tiny));
        assert!(r >= 0.05, "STR should have the suite's highest ratio, got {r:.4}");
    }

    #[test]
    fn table_regions_fit_the_modeled_sizes() {
        let k = StrMatch::new(Scale::Tiny);
        assert_eq!(k.bucket_bytes + k.keyword_bytes, 32 << 10);
    }
}
