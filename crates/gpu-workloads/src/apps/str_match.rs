//! STR — String Match (Mars, Cache Insufficient).
//!
//! Grep-style keyword matching over a 354984-record corpus: text is
//! streamed (two lines per chunk), and every chunk probes the keyword
//! hash table. The table (16 KB of buckets + 16 KB of keyword data) is
//! right at the baseline capacity, and STR has the highest
//! memory-access ratio of the suite (rightmost bar of Figure 6), so the
//! L1D is on the critical path for nearly every instruction.

use crate::pattern::{desync, alu_block, coalesced, scatter, warp_rng, AddrSpace};
use crate::registry::Scale;
use gpu_sim::isa::TraceOp;
use gpu_sim::{GridDesc, Kernel};

/// String-match model. See the module docs.
pub struct StrMatch {
    ctas: usize,
    warps: usize,
    iters: usize,
    text: u64,
    buckets: u64,
    bucket_bytes: u64,
    keywords: u64,
    keyword_bytes: u64,
    matches: u64,
    seed: u64,
}

impl StrMatch {
    /// Build at the given scale.
    pub fn new(scale: Scale) -> Self {
        let (ctas, warps, iters) = match scale {
            Scale::Tiny => (8, 4, 12),
            Scale::Full => (96, 6, 32),
        };
        let mut mem = AddrSpace::new();
        StrMatch {
            ctas,
            warps,
            iters,
            text: mem.alloc(64 << 20),
            buckets: mem.alloc(16 << 10),
            bucket_bytes: 16 << 10,
            keywords: mem.alloc(16 << 10),
            keyword_bytes: 16 << 10,
            matches: mem.alloc(1 << 20),
            seed: 0x5354,
        }
    }
}

impl Kernel for StrMatch {
    fn name(&self) -> &str {
        "STR"
    }

    fn grid(&self) -> GridDesc {
        GridDesc { num_ctas: self.ctas, warps_per_cta: self.warps }
    }

    fn warp_ops(&self, cta: usize, warp: usize) -> Vec<TraceOp> {
        let mut rng = warp_rng(self.seed, cta, warp);
        let mut ops = Vec::new();
        let mut apc = 64;
        let gwarp = (cta * self.warps + warp) as u64;
        desync(&mut ops, &mut apc, gwarp);
        for i in 0..self.iters as u64 {
            // Stream a text chunk.
            let rb = 1 + ((i % 2) as u8) * 8;
            let chunk = self.text + (gwarp * self.iters as u64 + i) * 256;
            ops.push(TraceOp::load(0, rb, coalesced(chunk)));
            ops.push(TraceOp::load(1, rb + 1, coalesced(chunk + 128)));
            alu_block(&mut ops, &mut apc, 2, rb);
            // Hash-bucket probe for each lane's shingle.
            let probes = scatter(&mut rng, self.buckets, self.bucket_bytes, 16);
            ops.push(TraceOp::load(2, rb + 2, probes));
            // Compare against candidate keywords.
            let kws = scatter(&mut rng, self.keywords, self.keyword_bytes, 8);
            ops.push(TraceOp::load(3, rb + 3, kws));
            alu_block(&mut ops, &mut apc, 2, rb + 2);
            if i % 4 == 3 {
                ops.push(TraceOp::store(4, coalesced(self.matches + gwarp * 128)).with_srcs([rb + 3]));
            }
        }
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::static_mem_ratio;

    #[test]
    fn is_cache_insufficient_with_high_ratio() {
        let r = static_mem_ratio(&StrMatch::new(Scale::Tiny));
        assert!(r >= 0.05, "STR should have the suite's highest ratio, got {r:.4}");
    }

    #[test]
    fn table_regions_fit_the_modeled_sizes() {
        let k = StrMatch::new(Scale::Tiny);
        assert_eq!(k.bucket_bytes + k.keyword_bytes, 32 << 10);
    }
}
