//! GEMM — Matrix Multiply-add (Polybench 512³, Cache Sufficient).
//!
//! The shared-memory-tiled GEMM every CUDA tutorial ships: per k-tile a
//! warp loads one line of the A tile and one line of the B tile, then
//! does a full tile's worth of fused multiply-adds out of shared
//! memory. Tile lines are re-read almost immediately by the sibling
//! warps of the CTA (short reuse distances), and two transactions per
//! ~34 warp instructions keeps GEMM deep in Cache Sufficient territory.

use crate::gen::{GenStream, SegmentSource, WarpCtx};
use crate::pattern::{alu_block, coalesced, desync, AddrSpace};
use crate::registry::Scale;
use gpu_sim::isa::TraceOp;
use gpu_sim::{GridDesc, Kernel, OpStream};

/// Tiled-GEMM model. See the module docs.
#[derive(Clone)]
pub struct Gemm {
    ctas: usize,
    warps: usize,
    ktiles: usize,
    a: u64,
    b: u64,
    c: u64,
    row_bytes: u64,
}

impl Gemm {
    /// Build at the given scale.
    pub fn new(scale: Scale) -> Self {
        let (ctas, warps, ktiles) = match scale {
            Scale::Tiny => (4, 2, 6),
            Scale::Full | Scale::Scaled(_) => (64, 8, 16),
        };
        let ktiles = ktiles * scale.factor() as usize;
        let mut mem = AddrSpace::new();
        let row_bytes = 512 * 4;
        Gemm {
            ctas,
            warps,
            ktiles,
            a: mem.alloc(512 * row_bytes),
            b: mem.alloc(512 * row_bytes),
            c: mem.alloc(512 * row_bytes),
            row_bytes,
        }
    }
}

impl Kernel for Gemm {
    fn name(&self) -> &str {
        "GEMM"
    }

    fn grid(&self) -> GridDesc {
        GridDesc { num_ctas: self.ctas, warps_per_cta: self.warps }
    }

    fn warp_stream(&self, cta: usize, warp: usize) -> Box<dyn OpStream> {
        Box::new(GenStream::new(GemmGen { app: self.clone(), ctx: WarpCtx::new(0, cta, warp) }))
    }
}

/// Segment 0 = desync prologue; segments 1..=ktiles = k-tiles; one
/// final segment = the C-tile store epilogue.
struct GemmGen {
    app: Gemm,
    ctx: WarpCtx,
}

impl SegmentSource for GemmGen {
    fn emit(&mut self, seg: u64, out: &mut Vec<TraceOp>) -> bool {
        let (cta, warp) = (self.ctx.cta, self.ctx.warp);
        if seg == 0 {
            desync(out, &mut self.ctx.apc, (cta * 64 + warp) as u64);
            return true;
        }
        // CTA computes a 32×(warps) row block; warp's row within the
        // C tile decides its A row, all warps share the B tile rows.
        let tile_row = (cta as u64 * 32) % 512;
        let a_row = (tile_row + warp as u64) % 512;
        let kt = seg - 1;
        if kt < self.app.ktiles as u64 {
            let rb = 1 + ((kt % 2) as u8) * 8;
            let k_off = kt * 128; // 32 floats per k-tile
            out.push(TraceOp::load(0, rb, coalesced(self.app.a + a_row * self.app.row_bytes + k_off)));
            // Each warp stages one B-tile row; sibling warps re-read it.
            let b_row = (kt * 32 + warp as u64) % 512;
            out.push(TraceOp::load(
                1,
                rb + 2,
                coalesced(self.app.b + b_row * self.app.row_bytes + (tile_row * 4) % self.app.row_bytes),
            ));
            alu_block(out, &mut self.ctx.apc, 32, rb);
            return true;
        }
        if kt == self.app.ktiles as u64 {
            out.push(
                TraceOp::store(2, coalesced(self.app.c + a_row * self.app.row_bytes + (tile_row * 4) % self.app.row_bytes))
                    .with_srcs([3]),
            );
            return true;
        }
        false
    }

    fn reset(&mut self) {
        self.ctx.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::static_mem_ratio;

    #[test]
    fn is_cache_sufficient() {
        assert!(static_mem_ratio(&Gemm::new(Scale::Tiny)) < 0.005, "GEMM is the most compute-bound app");
    }

    #[test]
    fn two_transactions_per_ktile() {
        let k = Gemm::new(Scale::Tiny);
        let (txns, _) = crate::registry::static_mem_profile(&k);
        let grid = k.grid();
        let expected = grid.total_warps() as u64 * (2 * k.ktiles as u64 + 1);
        assert_eq!(txns, expected);
    }
}
