//! STEN — 3-D Stencil (Parboil, Cache Sufficient).
//!
//! A 7-point stencil over a 512×512×64 volume. The y±1 neighbours of a
//! row return within a few thousand accesses (mid reuse distances), but
//! the z±1 neighbours live a whole 1 MB plane away — far beyond any L1D
//! — so, as Figure 3 shows for STEN, the distribution is dominated by
//! long reuse distances and compulsory misses, and no realistic L1
//! capacity captures it (Figure 4's flat miss rate).

use crate::pattern::{desync, alu_block, coalesced, AddrSpace};
use crate::registry::Scale;
use gpu_sim::isa::TraceOp;
use gpu_sim::{GridDesc, Kernel};

/// 3-D stencil model. See the module docs.
pub struct Sten {
    ctas: usize,
    warps: usize,
    rows: usize,
    grid_base: u64,
    out: u64,
    row_bytes: u64,
    plane_bytes: u64,
}

impl Sten {
    /// Build at the given scale.
    pub fn new(scale: Scale) -> Self {
        let (ctas, warps, rows) = match scale {
            Scale::Tiny => (4, 2, 6),
            Scale::Full => (64, 6, 40),
        };
        let mut mem = AddrSpace::new();
        let row_bytes = 512 * 4;
        let plane_bytes = 512 * row_bytes;
        Sten {
            ctas,
            warps,
            rows,
            grid_base: mem.alloc(64 * plane_bytes),
            out: mem.alloc(64 * plane_bytes),
            row_bytes,
            plane_bytes,
        }
    }
}

impl Kernel for Sten {
    fn name(&self) -> &str {
        "STEN"
    }

    fn grid(&self) -> GridDesc {
        GridDesc { num_ctas: self.ctas, warps_per_cta: self.warps }
    }

    fn warp_ops(&self, cta: usize, warp: usize) -> Vec<TraceOp> {
        let mut ops = Vec::new();
        let mut apc = 64;
        let strips_per_row = 512 / 32;
        let gwarp = cta * self.warps + warp;
        desync(&mut ops, &mut apc, gwarp as u64);
        let col = ((gwarp % strips_per_row) * 32) as u64 * 4;
        let work = gwarp / strips_per_row;
        let z = (work % 62 + 1) as u64;
        let row0 = (work / 62 * self.rows) as u64 % 500;
        for r in 0..self.rows as u64 {
            // Rotate registers so consecutive rows overlap in flight.
            let rb = 1 + ((r % 2) as u8) * 12;
            let center = self.grid_base + z * self.plane_bytes + (row0 + r) * self.row_bytes + col;
            ops.push(TraceOp::load(0, rb, coalesced(center)));
            ops.push(TraceOp::load(1, rb + 2, coalesced(center - self.row_bytes)));
            ops.push(TraceOp::load(2, rb + 4, coalesced(center + self.row_bytes)));
            ops.push(TraceOp::load(3, rb + 6, coalesced(center - self.plane_bytes)));
            ops.push(TraceOp::load(4, rb + 8, coalesced(center + self.plane_bytes)));
            alu_block(&mut ops, &mut apc, 30, rb);
            ops.push(
                TraceOp::store(5, coalesced(self.out + z * self.plane_bytes + (row0 + r) * self.row_bytes + col))
                    .with_srcs([rb + 2]),
            );
        }
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::static_mem_ratio;
    use gpu_sim::isa::OpKind;

    #[test]
    fn is_cache_sufficient() {
        assert!(static_mem_ratio(&Sten::new(Scale::Tiny)) < 0.01);
    }

    #[test]
    fn z_neighbours_are_a_plane_apart() {
        let k = Sten::new(Scale::Tiny);
        let ops = k.warp_ops(0, 0);
        let addr_of = |pc: u32| {
            ops.iter()
                .find(|o| o.pc == pc && o.is_mem())
                .and_then(|o| match &o.kind {
                    OpKind::Mem { addrs, .. } => Some(addrs[0]),
                    _ => None,
                })
                .unwrap()
        };
        assert_eq!(addr_of(0) - addr_of(3), k.plane_bytes);
        assert_eq!(addr_of(4) - addr_of(0), k.plane_bytes);
    }
}
