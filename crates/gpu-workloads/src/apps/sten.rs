//! STEN — 3-D Stencil (Parboil, Cache Sufficient).
//!
//! A 7-point stencil over a 512×512×64 volume. The y±1 neighbours of a
//! row return within a few thousand accesses (mid reuse distances), but
//! the z±1 neighbours live a whole 1 MB plane away — far beyond any L1D
//! — so, as Figure 3 shows for STEN, the distribution is dominated by
//! long reuse distances and compulsory misses, and no realistic L1
//! capacity captures it (Figure 4's flat miss rate).

use crate::gen::{GenStream, SegmentSource, WarpCtx};
use crate::pattern::{alu_block, coalesced, desync, AddrSpace};
use crate::registry::Scale;
use gpu_sim::isa::TraceOp;
use gpu_sim::{GridDesc, Kernel, OpStream};

/// 3-D stencil model. See the module docs.
#[derive(Clone)]
pub struct Sten {
    ctas: usize,
    warps: usize,
    rows: usize,
    grid_base: u64,
    out: u64,
    row_bytes: u64,
    plane_bytes: u64,
}

impl Sten {
    /// Build at the given scale.
    pub fn new(scale: Scale) -> Self {
        let (ctas, warps, rows) = match scale {
            Scale::Tiny => (4, 2, 6),
            Scale::Full | Scale::Scaled(_) => (64, 6, 40),
        };
        let rows = rows * scale.factor() as usize;
        let mut mem = AddrSpace::new();
        let row_bytes = 512 * 4;
        let plane_bytes = 512 * row_bytes;
        // The volume grows with the scale factor so the deeper row walk
        // stays inside its own region.
        let vol_bytes = 64 * plane_bytes * scale.factor();
        Sten {
            ctas,
            warps,
            rows,
            grid_base: mem.alloc(vol_bytes),
            out: mem.alloc(vol_bytes),
            row_bytes,
            plane_bytes,
        }
    }
}

impl Kernel for Sten {
    fn name(&self) -> &str {
        "STEN"
    }

    fn grid(&self) -> GridDesc {
        GridDesc { num_ctas: self.ctas, warps_per_cta: self.warps }
    }

    fn warp_stream(&self, cta: usize, warp: usize) -> Box<dyn OpStream> {
        Box::new(GenStream::new(StenGen { app: self.clone(), ctx: WarpCtx::new(0, cta, warp) }))
    }
}

/// Segment 0 = desync prologue; segment 1 + r = row `r` of the strip.
struct StenGen {
    app: Sten,
    ctx: WarpCtx,
}

impl SegmentSource for StenGen {
    fn emit(&mut self, seg: u64, out: &mut Vec<TraceOp>) -> bool {
        let strips_per_row = 512 / 32;
        let gwarp = self.ctx.cta * self.app.warps + self.ctx.warp;
        if seg == 0 {
            desync(out, &mut self.ctx.apc, gwarp as u64);
            return true;
        }
        let r = seg - 1;
        if r >= self.app.rows as u64 {
            return false;
        }
        let col = ((gwarp % strips_per_row) * 32) as u64 * 4;
        let work = gwarp / strips_per_row;
        let z = (work % 62 + 1) as u64;
        let row0 = (work / 62 * self.app.rows) as u64 % 500;
        // Rotate registers so consecutive rows overlap in flight.
        let rb = 1 + ((r % 2) as u8) * 12;
        let center = self.app.grid_base + z * self.app.plane_bytes + (row0 + r) * self.app.row_bytes + col;
        out.push(TraceOp::load(0, rb, coalesced(center)));
        out.push(TraceOp::load(1, rb + 2, coalesced(center - self.app.row_bytes)));
        out.push(TraceOp::load(2, rb + 4, coalesced(center + self.app.row_bytes)));
        out.push(TraceOp::load(3, rb + 6, coalesced(center - self.app.plane_bytes)));
        out.push(TraceOp::load(4, rb + 8, coalesced(center + self.app.plane_bytes)));
        alu_block(out, &mut self.ctx.apc, 30, rb);
        out.push(
            TraceOp::store(
                5,
                coalesced(self.app.out + z * self.app.plane_bytes + (row0 + r) * self.app.row_bytes + col),
            )
            .with_srcs([rb + 2]),
        );
        true
    }

    fn reset(&mut self) {
        self.ctx.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::static_mem_ratio;
    use gpu_sim::isa::OpKind;

    #[test]
    fn is_cache_sufficient() {
        assert!(static_mem_ratio(&Sten::new(Scale::Tiny)) < 0.01);
    }

    #[test]
    fn z_neighbours_are_a_plane_apart() {
        let k = Sten::new(Scale::Tiny);
        let ops = k.warp_ops(0, 0);
        let addr_of = |pc: u32| {
            ops.iter()
                .find(|o| o.pc == pc && o.is_mem())
                .and_then(|o| match &o.kind {
                    OpKind::Mem { addrs, .. } => Some(addrs[0]),
                    _ => None,
                })
                .unwrap()
        };
        assert_eq!(addr_of(0) - addr_of(3), k.plane_bytes);
        assert_eq!(addr_of(4) - addr_of(0), k.plane_bytes);
    }
}
