//! BP — Back Propagation (Rodinia, Cache Sufficient).
//!
//! The forward layer of Rodinia's 65536-unit network: each warp streams
//! weight-matrix rows while repeatedly re-reading the (small) input
//! activation vector. The activation vector fits comfortably in the
//! L1D, giving BP the short-reuse-distance profile of Figure 3 and a
//! memory-access ratio well under 1 %.

use crate::gen::{GenStream, SegmentSource, WarpCtx};
use crate::pattern::{alu_block, coalesced, desync, AddrSpace};
use crate::registry::Scale;
use gpu_sim::isa::TraceOp;
use gpu_sim::{GridDesc, Kernel, OpStream};

/// Back-propagation model. See the module docs.
#[derive(Clone)]
pub struct Bp {
    ctas: usize,
    warps: usize,
    iters: usize,
    weights: u64,
    input: u64,
    input_bytes: u64,
    out: u64,
}

impl Bp {
    /// Build at the given scale.
    pub fn new(scale: Scale) -> Self {
        let (ctas, warps, iters) = match scale {
            Scale::Tiny => (4, 2, 8),
            Scale::Full | Scale::Scaled(_) => (64, 6, 48),
        };
        let iters = iters * scale.factor() as usize;
        let mut mem = AddrSpace::new();
        Bp {
            ctas,
            warps,
            iters,
            // The streamed weight matrix grows with the scale factor so
            // the longer stream stays inside its own region.
            weights: mem.alloc((64 << 20) * scale.factor()),
            // 8 KB activation vector: half the L1D, so it stays resident.
            input: mem.alloc(8 << 10),
            input_bytes: 8 << 10,
            out: mem.alloc(1 << 20),
        }
    }
}

impl Kernel for Bp {
    fn name(&self) -> &str {
        "BP"
    }

    fn grid(&self) -> GridDesc {
        GridDesc { num_ctas: self.ctas, warps_per_cta: self.warps }
    }

    fn warp_stream(&self, cta: usize, warp: usize) -> Box<dyn OpStream> {
        Box::new(GenStream::new(BpGen { app: self.clone(), ctx: WarpCtx::new(0, cta, warp) }))
    }
}

/// Segment 0 = desync prologue; segment 1 + i = weight row `i`.
struct BpGen {
    app: Bp,
    ctx: WarpCtx,
}

impl SegmentSource for BpGen {
    fn emit(&mut self, seg: u64, out: &mut Vec<TraceOp>) -> bool {
        let gwarp = (self.ctx.cta * self.app.warps + self.ctx.warp) as u64;
        if seg == 0 {
            desync(out, &mut self.ctx.apc, gwarp);
            return true;
        }
        let i = seg - 1;
        if i >= self.app.iters as u64 {
            return false;
        }
        // Stream a fresh weight row segment...
        let rb = 1 + ((i % 2) as u8) * 8;
        let wrow = self.app.weights + (gwarp * self.app.iters as u64 + i) * 128;
        out.push(TraceOp::load(0, rb, coalesced(wrow)));
        // ...and re-read a rotating segment of the activation vector.
        let act = self.app.input + (i * 128) % self.app.input_bytes;
        out.push(TraceOp::load(1, rb + 2, coalesced(act)));
        alu_block(out, &mut self.ctx.apc, 14, rb);
        if i % 8 == 7 {
            out.push(TraceOp::store(2, coalesced(self.app.out + gwarp * 128)).with_srcs([rb + 2]));
        }
        true
    }

    fn reset(&mut self) {
        self.ctx.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::static_mem_ratio;
    use gpu_sim::isa::OpKind;

    #[test]
    fn is_cache_sufficient() {
        assert!(static_mem_ratio(&Bp::new(Scale::Tiny)) < 0.01);
    }

    #[test]
    fn activation_reads_stay_in_the_small_vector() {
        let k = Bp::new(Scale::Tiny);
        for op in k.warp_ops(1, 1) {
            if let OpKind::Mem { addrs, is_write: false } = &op.kind {
                if op.pc == 1 {
                    for &a in addrs {
                        assert!((k.input..k.input + k.input_bytes + 128).contains(&a));
                    }
                }
            }
        }
    }
}
