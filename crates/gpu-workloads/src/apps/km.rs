//! KM — K-means (Rodinia, 204800 points, Cache Insufficient).
//!
//! The assignment step: each point is streamed once, then compared
//! against all K centroids. With K = 256 and 32 features per centroid
//! the centroid table is 32 KB — exactly 2× the baseline L1D — and its
//! lines recur every K centroid reads, i.e. ~8 accesses per cache set:
//! just past 4-way LRU's reach (so the baseline thrashes, Figure 3 puts
//! most of KM's RDs above the associativity), but squarely inside the
//! VTA's visibility and the protected lifetime DLP assigns. K-means is
//! the canonical protection winner.

use crate::gen::{GenStream, SegmentSource, WarpCtx};
use crate::pattern::{alu_block, coalesced, desync, AddrSpace, F4};
use crate::registry::Scale;
use gpu_sim::isa::TraceOp;
use gpu_sim::{GridDesc, Kernel, OpStream};

/// K-means assignment-step model. See the module docs.
#[derive(Clone)]
pub struct Km {
    ctas: usize,
    warps: usize,
    points: usize,
    k: u64,
    feat_bytes: u64,
    data: u64,
    centroids: u64,
    assign: u64,
}

impl Km {
    /// Build at the given scale.
    pub fn new(scale: Scale) -> Self {
        let (ctas, warps, points, k) = match scale {
            Scale::Tiny => (8, 4, 2, 64),
            Scale::Full | Scale::Scaled(_) => (96, 6, 3, 256),
        };
        let points = points * scale.factor() as usize;
        let feat_bytes = 32 * F4; // 32 features = one 128 B line
        let mut mem = AddrSpace::new();
        Km {
            ctas,
            warps,
            points,
            k,
            feat_bytes,
            // The streamed point data grows with the scale factor so the
            // longer point walk stays inside its own region.
            data: mem.alloc((64 << 20) * scale.factor()),
            centroids: mem.alloc(k * feat_bytes),
            assign: mem.alloc(1 << 20),
        }
    }
}

impl Kernel for Km {
    fn name(&self) -> &str {
        "KM"
    }

    fn grid(&self) -> GridDesc {
        GridDesc { num_ctas: self.ctas, warps_per_cta: self.warps }
    }

    fn warp_stream(&self, cta: usize, warp: usize) -> Box<dyn OpStream> {
        Box::new(GenStream::new(KmGen { app: self.clone(), ctx: WarpCtx::new(0, cta, warp) }))
    }
}

/// Segment 0 = desync prologue; segment 1 + p = point `p` (the whole
/// centroid distance loop — bounded by K, which does not scale).
struct KmGen {
    app: Km,
    ctx: WarpCtx,
}

impl SegmentSource for KmGen {
    fn emit(&mut self, seg: u64, out: &mut Vec<TraceOp>) -> bool {
        let gwarp = (self.ctx.cta * self.app.warps + self.ctx.warp) as u64;
        if seg == 0 {
            desync(out, &mut self.ctx.apc, gwarp);
            return true;
        }
        let p = seg - 1;
        if p >= self.app.points as u64 {
            return false;
        }
        // Stream the point's feature line.
        let pt = self.app.data + (gwarp * self.app.points as u64 + p) * self.app.feat_bytes;
        out.push(TraceOp::load(0, 1, coalesced(pt)));
        // Distance to every centroid; stagger the starting centroid
        // per warp so resident warps cover different table slices.
        let c0 = (gwarp * 17) % self.app.k;
        // Distance loop, unroll-and-jammed by 4 the way nvcc
        // schedules it: a group of independent centroid loads, then
        // the arithmetic that consumes them.
        let mut cs = 0;
        while cs < self.app.k {
            let group = (self.app.k - cs).min(4);
            for g in 0..group {
                let rb = 2 + (g as u8) * 4;
                let c = (c0 + cs + g) % self.app.k;
                out.push(TraceOp::load(1, rb, coalesced(self.app.centroids + c * self.app.feat_bytes)));
            }
            for g in 0..group {
                let rb = 2 + (g as u8) * 4;
                out.push(TraceOp::alu(64, 4).with_srcs([rb]).with_dst(rb + 1));
            }
            cs += group;
        }
        alu_block(out, &mut self.ctx.apc, 2, 3);
        out.push(TraceOp::store(2, coalesced(self.app.assign + gwarp * 128)).with_srcs([3]));
        true
    }

    fn reset(&mut self) {
        self.ctx.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::static_mem_ratio;
    use gpu_sim::isa::OpKind;

    #[test]
    fn is_cache_insufficient() {
        let r = static_mem_ratio(&Km::new(Scale::Tiny));
        assert!(r >= 0.01, "KM ratio {r:.4}");
    }

    #[test]
    fn centroid_table_overflows_the_l1d_at_full_scale() {
        let k = Km::new(Scale::Full);
        assert_eq!(k.k * k.feat_bytes, 32 << 10);
    }

    #[test]
    fn every_centroid_line_is_read_once_per_point() {
        let k = Km::new(Scale::Tiny);
        let mut counts: std::collections::HashMap<u64, usize> = Default::default();
        for op in k.warp_ops(0, 0) {
            if let OpKind::Mem { addrs, is_write: false } = &op.kind {
                if op.pc == 1 {
                    *counts.entry(addrs[0] / 128).or_default() += 1;
                }
            }
        }
        assert_eq!(counts.len() as u64, k.k, "all centroids touched");
        assert!(counts.values().all(|&c| c == k.points), "each centroid once per point");
    }
}
