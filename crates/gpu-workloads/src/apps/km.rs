//! KM — K-means (Rodinia, 204800 points, Cache Insufficient).
//!
//! The assignment step: each point is streamed once, then compared
//! against all K centroids. With K = 256 and 32 features per centroid
//! the centroid table is 32 KB — exactly 2× the baseline L1D — and its
//! lines recur every K centroid reads, i.e. ~8 accesses per cache set:
//! just past 4-way LRU's reach (so the baseline thrashes, Figure 3 puts
//! most of KM's RDs above the associativity), but squarely inside the
//! VTA's visibility and the protected lifetime DLP assigns. K-means is
//! the canonical protection winner.

use crate::pattern::{desync, alu_block, coalesced, AddrSpace, F4};
use crate::registry::Scale;
use gpu_sim::isa::TraceOp;
use gpu_sim::{GridDesc, Kernel};

/// K-means assignment-step model. See the module docs.
pub struct Km {
    ctas: usize,
    warps: usize,
    points: usize,
    k: u64,
    feat_bytes: u64,
    data: u64,
    centroids: u64,
    assign: u64,
}

impl Km {
    /// Build at the given scale.
    pub fn new(scale: Scale) -> Self {
        let (ctas, warps, points, k) = match scale {
            Scale::Tiny => (8, 4, 2, 64),
            Scale::Full => (96, 6, 3, 256),
        };
        let feat_bytes = 32 * F4; // 32 features = one 128 B line
        let mut mem = AddrSpace::new();
        Km {
            ctas,
            warps,
            points,
            k,
            feat_bytes,
            data: mem.alloc(64 << 20),
            centroids: mem.alloc(k * feat_bytes),
            assign: mem.alloc(1 << 20),
        }
    }
}

impl Kernel for Km {
    fn name(&self) -> &str {
        "KM"
    }

    fn grid(&self) -> GridDesc {
        GridDesc { num_ctas: self.ctas, warps_per_cta: self.warps }
    }

    fn warp_ops(&self, cta: usize, warp: usize) -> Vec<TraceOp> {
        let mut ops = Vec::new();
        let mut apc = 64;
        let gwarp = (cta * self.warps + warp) as u64;
        desync(&mut ops, &mut apc, gwarp);
        for p in 0..self.points as u64 {
            // Stream the point's feature line.
            let pt = self.data + (gwarp * self.points as u64 + p) * self.feat_bytes;
            ops.push(TraceOp::load(0, 1, coalesced(pt)));
            // Distance to every centroid; stagger the starting centroid
            // per warp so resident warps cover different table slices.
            let c0 = (gwarp * 17) % self.k;
            // Distance loop, unroll-and-jammed by 4 the way nvcc
            // schedules it: a group of independent centroid loads, then
            // the arithmetic that consumes them.
            let mut cs = 0;
            while cs < self.k {
                let group = (self.k - cs).min(4);
                for g in 0..group {
                    let rb = 2 + (g as u8) * 4;
                    let c = (c0 + cs + g) % self.k;
                    ops.push(TraceOp::load(1, rb, coalesced(self.centroids + c * self.feat_bytes)));
                }
                for g in 0..group {
                    let rb = 2 + (g as u8) * 4;
                    ops.push(TraceOp::alu(64, 4).with_srcs([rb]).with_dst(rb + 1));
                }
                cs += group;
            }
            alu_block(&mut ops, &mut apc, 2, 3);
            ops.push(TraceOp::store(2, coalesced(self.assign + gwarp * 128)).with_srcs([3]));
        }
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::static_mem_ratio;
    use gpu_sim::isa::OpKind;

    #[test]
    fn is_cache_insufficient() {
        let r = static_mem_ratio(&Km::new(Scale::Tiny));
        assert!(r >= 0.01, "KM ratio {r:.4}");
    }

    #[test]
    fn centroid_table_overflows_the_l1d_at_full_scale() {
        let k = Km::new(Scale::Full);
        assert_eq!(k.k * k.feat_bytes, 32 << 10);
    }

    #[test]
    fn every_centroid_line_is_read_once_per_point() {
        let k = Km::new(Scale::Tiny);
        let mut counts: std::collections::HashMap<u64, usize> = Default::default();
        for op in k.warp_ops(0, 0) {
            if let OpKind::Mem { addrs, is_write: false } = &op.kind {
                if op.pc == 1 {
                    *counts.entry(addrs[0] / 128).or_default() += 1;
                }
            }
        }
        assert_eq!(counts.len() as u64, k.k, "all centroids touched");
        assert!(counts.values().all(|&c| c == k.points), "each centroid once per point");
    }
}
