//! CFD — Computational Fluid Dynamics (Rodinia, Cache Insufficient).
//!
//! The 97K-element unstructured-mesh Euler solver: per element the
//! kernel streams its own state vectors and gathers four neighbours
//! through an indirection array. Neighbours of nearby elements cluster
//! (the mesh is locality-renumbered), so gathered lines return at mid
//! reuse distances — but the footprint is far beyond 16 KB, so the
//! baseline thrashes. CFD is one of the apps where DLP trades some raw
//! hits for bypass-relieved stalls (§6.3.2) and still wins on IPC.

use crate::gen::{GenStream, SegmentSource, WarpCtx};
use crate::pattern::{alu_block, coalesced, desync, AddrSpace, F4};
use crate::registry::Scale;
use gpu_sim::isa::TraceOp;
use gpu_sim::{GridDesc, Kernel, OpStream};
use rand::Rng;

/// CFD flux-kernel model. See the module docs.
#[derive(Clone)]
pub struct Cfd {
    ctas: usize,
    warps: usize,
    iters: usize,
    density: u64,
    momentum: u64,
    energy: u64,
    mesh_bytes: u64,
    flux: u64,
    seed: u64,
}

impl Cfd {
    /// Build at the given scale.
    pub fn new(scale: Scale) -> Self {
        let (ctas, warps, iters) = match scale {
            Scale::Tiny => (8, 4, 10),
            Scale::Full | Scale::Scaled(_) => (96, 6, 24),
        };
        let iters = iters * scale.factor() as usize;
        let mut mem = AddrSpace::new();
        let mesh_bytes = 97_046u64.next_multiple_of(32) * F4;
        Cfd {
            ctas,
            warps,
            iters,
            density: mem.alloc(mesh_bytes),
            momentum: mem.alloc(mesh_bytes * 3),
            energy: mem.alloc(mesh_bytes),
            mesh_bytes,
            flux: mem.alloc(mesh_bytes * 5),
            seed: 0x4346,
        }
    }
}

impl Kernel for Cfd {
    fn name(&self) -> &str {
        "CFD"
    }

    fn grid(&self) -> GridDesc {
        GridDesc { num_ctas: self.ctas, warps_per_cta: self.warps }
    }

    fn warp_stream(&self, cta: usize, warp: usize) -> Box<dyn OpStream> {
        Box::new(GenStream::new(CfdGen { app: self.clone(), ctx: WarpCtx::new(self.seed, cta, warp) }))
    }
}

/// Segment 0 = desync prologue; segment 1 + i = element batch `i`.
struct CfdGen {
    app: Cfd,
    ctx: WarpCtx,
}

impl SegmentSource for CfdGen {
    fn emit(&mut self, seg: u64, out: &mut Vec<TraceOp>) -> bool {
        let gwarp = (self.ctx.cta * self.app.warps + self.ctx.warp) as u64;
        if seg == 0 {
            desync(out, &mut self.ctx.apc, gwarp);
            return true;
        }
        let i = seg - 1;
        if i >= self.app.iters as u64 {
            return false;
        }
        // This warp's 32 elements (struct-of-arrays, coalesced).
        let elem = ((gwarp * self.app.iters as u64 + i) * 128) % (self.app.mesh_bytes - 128);
        let rb = 1 + ((i % 2) as u8) * 16;
        out.push(TraceOp::load(0, rb, coalesced(self.app.density + elem)));
        out.push(TraceOp::load(1, rb + 1, coalesced(self.app.momentum + elem)));
        out.push(TraceOp::load(2, rb + 2, coalesced(self.app.energy + elem)));
        // Gather 4 neighbours per element; the renumbered mesh keeps
        // them within a ±16 KB window of the element, so other
        // warps' gathers revisit these lines at mid distances.
        for (pc, reg) in [(3u32, rb + 3), (4, rb + 4), (5, rb + 5), (6, rb + 6)] {
            let addrs: Vec<u64> = (0..16)
                .map(|_| {
                    let center = (self.app.density + elem) as i64;
                    let off = self.ctx.rng.gen_range(-(16 << 10)..(16 << 10)) / 4 * 4;
                    let a = center + off;
                    a.clamp(self.app.density as i64, (self.app.density + self.app.mesh_bytes - 4) as i64)
                        as u64
                })
                .collect();
            out.push(TraceOp::load(pc, reg, addrs));
        }
        alu_block(out, &mut self.ctx.apc, 10, rb + 7);
        out.push(TraceOp::store(7, coalesced(self.app.flux + elem)).with_srcs([rb + 1]));
        true
    }

    fn reset(&mut self) {
        self.ctx.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::static_mem_ratio;
    use gpu_sim::isa::OpKind;

    #[test]
    fn is_cache_insufficient() {
        let r = static_mem_ratio(&Cfd::new(Scale::Tiny));
        assert!(r >= 0.01, "CFD ratio {r:.4}");
    }

    #[test]
    fn gathers_stay_near_their_element() {
        let k = Cfd::new(Scale::Tiny);
        let ops = k.warp_ops(0, 0);
        let mut elem_base = 0;
        for op in &ops {
            if let OpKind::Mem { addrs, .. } = &op.kind {
                match op.pc {
                    0 => elem_base = addrs[0],
                    3..=6 => {
                        for &a in addrs {
                            let d = a.abs_diff(elem_base);
                            assert!(d <= (16 << 10) + 128, "gather {d} bytes away");
                        }
                    }
                    _ => {}
                }
            }
        }
    }
}
