//! BFS — Breadth-First Search (Rodinia, 65536 nodes, Cache
//! Insufficient).
//!
//! Frontier expansion over a sparse graph. The model reproduces the
//! per-instruction diversity Figure 7 builds the whole DLP argument on:
//!
//! * node-offset reads (pc 0) — coalesced, shared between adjacent
//!   warps → short reuse distances;
//! * edge-list reads (pc 1) — streamed, compulsory;
//! * visited-flag probes (pc 2) — community-clustered scatter over a
//!   64 KB flag array → the 9–64 bucket dominates;
//! * distance-array updates (pc 3/4) — similar mid-range distances.
//!
//! A single protection distance over-serves pc 0 and under-serves pc 2,
//! which is precisely where per-instruction PDs pull ahead.

use crate::gen::{GenStream, SegmentSource, WarpCtx};
use crate::pattern::{alu_block, coalesced, desync, AddrSpace, F4};
use crate::registry::Scale;
use gpu_sim::isa::TraceOp;
use gpu_sim::{GridDesc, Kernel, OpStream};
use rand::Rng;

/// BFS model. See the module docs.
#[derive(Clone)]
pub struct Bfs {
    ctas: usize,
    warps: usize,
    iters: usize,
    offsets: u64,
    edges: u64,
    visited: u64,
    dist: u64,
    nodes: u64,
    seed: u64,
}

impl Bfs {
    /// Build at the given scale.
    pub fn new(scale: Scale) -> Self {
        let (ctas, warps, iters) = match scale {
            Scale::Tiny => (8, 4, 12),
            Scale::Full | Scale::Scaled(_) => (96, 6, 28),
        };
        let iters = iters * scale.factor() as usize;
        let mut mem = AddrSpace::new();
        let nodes = 65_536u64;
        Bfs {
            ctas,
            warps,
            iters,
            offsets: mem.alloc(nodes * F4),
            // The streamed edge list grows with the scale factor so the
            // longer frontier walk stays inside its own region.
            edges: mem.alloc((16 << 20) * scale.factor()),
            visited: mem.alloc(nodes * F4),
            dist: mem.alloc(nodes * F4),
            nodes,
            seed: 0x4253,
        }
    }

    /// Pick a neighbour id: mostly within the node's community (a 2K-id
    /// window), sometimes anywhere.
    fn neighbor(&self, rng: &mut impl Rng, node: u64) -> u64 {
        if rng.gen_bool(0.8) {
            let lo = node.saturating_sub(1024).min(self.nodes - 2048);
            lo + rng.gen_range(0..2048)
        } else {
            rng.gen_range(0..self.nodes)
        }
    }
}

impl Kernel for Bfs {
    fn name(&self) -> &str {
        "BFS"
    }

    fn grid(&self) -> GridDesc {
        GridDesc { num_ctas: self.ctas, warps_per_cta: self.warps }
    }

    fn warp_stream(&self, cta: usize, warp: usize) -> Box<dyn OpStream> {
        Box::new(GenStream::new(BfsGen { app: self.clone(), ctx: WarpCtx::new(self.seed, cta, warp) }))
    }
}

/// Segment 0 = desync prologue; segment 1 + i = frontier chunk `i`.
struct BfsGen {
    app: Bfs,
    ctx: WarpCtx,
}

impl SegmentSource for BfsGen {
    fn emit(&mut self, seg: u64, out: &mut Vec<TraceOp>) -> bool {
        let gwarp = (self.ctx.cta * self.app.warps + self.ctx.warp) as u64;
        if seg == 0 {
            desync(out, &mut self.ctx.apc, gwarp);
            return true;
        }
        let i = seg - 1;
        if i >= self.app.iters as u64 {
            return false;
        }
        // 32 frontier nodes, contiguous ids: adjacent warps touch
        // neighbouring offset lines (short RD).
        let rb = 1 + ((i % 2) as u8) * 8;
        let node0 = (gwarp * self.app.iters as u64 + i) * 32 % (self.app.nodes - 64);
        out.push(TraceOp::load(0, rb, coalesced(self.app.offsets + node0 * F4)));
        // Stream this frontier chunk's edge list.
        let e = self.app.edges + (gwarp * self.app.iters as u64 + i) * 256;
        out.push(TraceOp::load(1, rb + 1, coalesced(e)));
        alu_block(out, &mut self.ctx.apc, 4, rb);
        // Probe visited flags + distances of 16 neighbours (the probe
        // offsets build in the reusable scratch buffer).
        self.ctx.scratch.clear();
        for _ in 0..16 {
            let o = self.app.neighbor(&mut self.ctx.rng, node0) * F4;
            self.ctx.scratch.push(o);
        }
        out.push(TraceOp::load(2, rb + 2, self.ctx.scratch.iter().map(|&o| self.app.visited + o).collect()));
        out.push(TraceOp::load(3, rb + 3, self.ctx.scratch.iter().map(|&o| self.app.dist + o).collect()));
        alu_block(out, &mut self.ctx.apc, 4, rb + 2);
        // Relax a subset.
        let updates: Vec<u64> = self.ctx.scratch.iter().take(8).map(|&o| self.app.dist + o).collect();
        out.push(TraceOp::store(4, updates).with_srcs([rb + 3]));
        true
    }

    fn reset(&mut self) {
        self.ctx.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::static_mem_ratio;
    use gpu_sim::isa::OpKind;

    #[test]
    fn is_cache_insufficient() {
        let r = static_mem_ratio(&Bfs::new(Scale::Tiny));
        assert!(r >= 0.01, "BFS ratio {r:.4}");
    }

    #[test]
    fn probes_are_mostly_community_local() {
        let k = Bfs::new(Scale::Full);
        let mut local = 0u64;
        let mut total = 0u64;
        for op in k.warp_ops(0, 0) {
            if let OpKind::Mem { addrs, is_write: false } = &op.kind {
                if op.pc == 2 {
                    // Window is 2048 ids = 8 KB.
                    let base = addrs.iter().min().unwrap();
                    for &a in addrs {
                        total += 1;
                        if a - base <= 3 * 8192 {
                            local += 1;
                        }
                    }
                }
            }
        }
        assert!(total >= 16);
        assert!(local as f64 / total as f64 > 0.5);
    }

    #[test]
    fn distinct_static_instructions_touch_distinct_arrays() {
        let k = Bfs::new(Scale::Tiny);
        for op in k.warp_ops(1, 0) {
            if let OpKind::Mem { addrs, .. } = &op.kind {
                let region = match op.pc {
                    0 => (k.offsets, k.offsets + k.nodes * F4),
                    1 => (k.edges, k.edges + (16 << 20)),
                    2 => (k.visited, k.visited + k.nodes * F4),
                    3 | 4 => (k.dist, k.dist + k.nodes * F4),
                    _ => continue,
                };
                for &a in addrs {
                    assert!((region.0..region.1).contains(&a), "pc {} outside region", op.pc);
                }
            }
        }
    }
}
