//! SS — Similarity Score (Mars, Cache Insufficient).
//!
//! Pairwise document similarity (512 docs × 128 features): the kernel
//! repeatedly re-reads one side's feature vectors while streaming the
//! other side. The re-read working set (a 24 KB slab of feature lines)
//! is 1.5× the baseline L1D — the textbook protection case: LRU
//! thrashes it, while a protected subset yields hits on every pass.

use crate::gen::{GenStream, SegmentSource, WarpCtx};
use crate::pattern::{coalesced, desync, strided, AddrSpace};
use crate::registry::Scale;
use gpu_sim::isa::TraceOp;
use gpu_sim::{GridDesc, Kernel, OpStream};

/// Similarity Score model. See the module docs.
#[derive(Clone)]
pub struct Ss {
    ctas: usize,
    warps: usize,
    pairs: usize,
    features_a: u64,
    a_bytes: u64,
    features_b: u64,
    scores: u64,
}

impl Ss {
    /// Build at the given scale.
    pub fn new(scale: Scale) -> Self {
        let (ctas, warps, pairs) = match scale {
            Scale::Tiny => (8, 4, 24),
            Scale::Full | Scale::Scaled(_) => (96, 6, 40),
        };
        let pairs = pairs * scale.factor() as usize;
        let mut mem = AddrSpace::new();
        // 384 A-vector lines = 48 KB re-read slab.
        let a_bytes = 48 << 10;
        Ss {
            ctas,
            warps,
            pairs,
            features_a: mem.alloc(a_bytes),
            a_bytes,
            // The streamed B side grows with the scale factor so the
            // longer stream stays inside its own region.
            features_b: mem.alloc((64 << 20) * scale.factor()),
            scores: mem.alloc(1 << 20),
        }
    }
}

impl Kernel for Ss {
    fn name(&self) -> &str {
        "SS"
    }

    fn grid(&self) -> GridDesc {
        GridDesc { num_ctas: self.ctas, warps_per_cta: self.warps }
    }

    fn warp_stream(&self, cta: usize, warp: usize) -> Box<dyn OpStream> {
        // 6 slices x 16 docs x 512 B must fit the allocated slab.
        debug_assert!(6 * 16 * 512 <= self.a_bytes);
        Box::new(GenStream::new(SsGen { app: self.clone(), ctx: WarpCtx::new(0, cta, warp) }))
    }
}

/// Segment 0 = desync prologue; segment 1 + n = the unroll-and-jam
/// group starting at pair `2n` (groups advance by 2 pairs, 1 at the
/// tail).
struct SsGen {
    app: Ss,
    ctx: WarpCtx,
}

impl SegmentSource for SsGen {
    fn emit(&mut self, seg: u64, out: &mut Vec<TraceOp>) -> bool {
        let gwarp = (self.ctx.cta * self.app.warps + self.ctx.warp) as u64;
        if seg == 0 {
            desync(out, &mut self.ctx.apc, gwarp);
            return true;
        }
        let p = (seg - 1) * 2;
        if p >= self.app.pairs as u64 {
            return false;
        }
        // Each CTA works one 16-document slice of the A slab (8 KB) and
        // its warps cycle through it, one 512 B feature vector (4 lines)
        // per pair: resident CTAs with the same slice re-touch each
        // vector at set-level distances around the edge of the
        // protected-lifetime reach.
        let slice = (self.ctx.cta as u64 % 6) * 16;
        // Unroll-and-jam by 2 pairs: four loads in flight per warp.
        let group = (self.app.pairs as u64 - p).min(2);
        for g in 0..group {
            let rb = 1 + (g as u8) * 6;
            let a_doc = slice + (gwarp + p + g) % 16;
            out.push(TraceOp::load(0, rb, strided(self.app.features_a + a_doc * 512, 16)));
            // Stream the B side (two half-lines -> 2 transactions).
            let b = self.app.features_b + (gwarp * self.app.pairs as u64 + p + g) * 256;
            out.push(TraceOp::load(1, rb + 2, strided(b, 8)));
        }
        for g in 0..group {
            let rb = 1 + (g as u8) * 6;
            out.push(TraceOp::alu(64, 4).with_srcs([rb, rb + 2]).with_dst(rb + 1));
            out.push(TraceOp::alu(64, 4).with_srcs([rb + 1]).with_dst(rb + 3));
        }
        if p % 8 == 6 {
            out.push(TraceOp::store(2, coalesced(self.app.scores + gwarp * 128)).with_srcs([2]));
        }
        true
    }

    fn reset(&mut self) {
        self.ctx.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::static_mem_ratio;
    use gpu_sim::isa::OpKind;

    #[test]
    fn is_cache_insufficient() {
        let r = static_mem_ratio(&Ss::new(Scale::Tiny));
        assert!(r >= 0.01, "SS ratio {r:.4}");
    }

    #[test]
    fn a_slab_is_reread_across_pairs() {
        let k = Ss::new(Scale::Full);
        let mut lines = std::collections::HashSet::new();
        let mut touches = 0u64;
        for op in k.warp_ops(0, 0) {
            if let OpKind::Mem { addrs, is_write: false } = &op.kind {
                if op.pc == 0 {
                    lines.insert(addrs[0] / 128);
                    touches += 1;
                }
            }
        }
        assert!(touches as usize > lines.len(), "A lines must recur");
        assert!(lines.len() as u64 * 128 <= k.a_bytes);
    }
}
