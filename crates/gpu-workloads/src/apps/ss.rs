//! SS — Similarity Score (Mars, Cache Insufficient).
//!
//! Pairwise document similarity (512 docs × 128 features): the kernel
//! repeatedly re-reads one side's feature vectors while streaming the
//! other side. The re-read working set (a 24 KB slab of feature lines)
//! is 1.5× the baseline L1D — the textbook protection case: LRU
//! thrashes it, while a protected subset yields hits on every pass.

use crate::pattern::{desync, coalesced, strided, AddrSpace};
use crate::registry::Scale;
use gpu_sim::isa::TraceOp;
use gpu_sim::{GridDesc, Kernel};

/// Similarity Score model. See the module docs.
pub struct Ss {
    ctas: usize,
    warps: usize,
    pairs: usize,
    features_a: u64,
    a_bytes: u64,
    features_b: u64,
    scores: u64,
}

impl Ss {
    /// Build at the given scale.
    pub fn new(scale: Scale) -> Self {
        let (ctas, warps, pairs) = match scale {
            Scale::Tiny => (8, 4, 24),
            Scale::Full => (96, 6, 40),
        };
        let mut mem = AddrSpace::new();
        // 384 A-vector lines = 48 KB re-read slab.
        let a_bytes = 48 << 10;
        Ss {
            ctas,
            warps,
            pairs,
            features_a: mem.alloc(a_bytes),
            a_bytes,
            features_b: mem.alloc(64 << 20),
            scores: mem.alloc(1 << 20),
        }
    }
}

impl Kernel for Ss {
    fn name(&self) -> &str {
        "SS"
    }

    fn grid(&self) -> GridDesc {
        GridDesc { num_ctas: self.ctas, warps_per_cta: self.warps }
    }

    fn warp_ops(&self, cta: usize, warp: usize) -> Vec<TraceOp> {
        // 6 slices x 16 docs x 512 B must fit the allocated slab.
        debug_assert!(6 * 16 * 512 <= self.a_bytes);
        let mut ops = Vec::new();
        let mut apc = 64;
        let gwarp = (cta * self.warps + warp) as u64;
        desync(&mut ops, &mut apc, gwarp);
        // Each CTA works one 16-document slice of the A slab (8 KB) and
        // its warps cycle through it, one 512 B feature vector (4 lines)
        // per pair: resident CTAs with the same slice re-touch each
        // vector at set-level distances around the edge of the
        // protected-lifetime reach.
        let slice = (cta as u64 % 6) * 16;
        // Unroll-and-jam by 2 pairs: four loads in flight per warp.
        let mut p = 0u64;
        while p < self.pairs as u64 {
            let group = (self.pairs as u64 - p).min(2);
            for g in 0..group {
                let rb = 1 + (g as u8) * 6;
                let a_doc = slice + (gwarp + p + g) % 16;
                ops.push(TraceOp::load(0, rb, strided(self.features_a + a_doc * 512, 16)));
                // Stream the B side (two half-lines -> 2 transactions).
                let b = self.features_b + (gwarp * self.pairs as u64 + p + g) * 256;
                ops.push(TraceOp::load(1, rb + 2, strided(b, 8)));
            }
            for g in 0..group {
                let rb = 1 + (g as u8) * 6;
                ops.push(TraceOp::alu(64, 4).with_srcs([rb, rb + 2]).with_dst(rb + 1));
                ops.push(TraceOp::alu(64, 4).with_srcs([rb + 1]).with_dst(rb + 3));
            }
            if p % 8 == 6 {
                ops.push(TraceOp::store(2, coalesced(self.scores + gwarp * 128)).with_srcs([2]));
            }
            p += group;
        }
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::static_mem_ratio;
    use gpu_sim::isa::OpKind;

    #[test]
    fn is_cache_insufficient() {
        let r = static_mem_ratio(&Ss::new(Scale::Tiny));
        assert!(r >= 0.01, "SS ratio {r:.4}");
    }

    #[test]
    fn a_slab_is_reread_across_pairs() {
        let k = Ss::new(Scale::Full);
        let mut lines = std::collections::HashSet::new();
        let mut touches = 0u64;
        for op in k.warp_ops(0, 0) {
            if let OpKind::Mem { addrs, is_write: false } = &op.kind {
                if op.pc == 0 {
                    lines.insert(addrs[0] / 128);
                    touches += 1;
                }
            }
        }
        assert!(touches as usize > lines.len(), "A lines must recur");
        assert!(lines.len() as u64 * 128 <= k.a_bytes);
    }
}
