//! HG — Histogram (CUDA Samples, Cache Sufficient).
//!
//! The real 64M-element histogram streams pixel data once (compulsory
//! misses), accumulates into per-block shared-memory histograms, and
//! only occasionally merges into the global bin array. What the L1D
//! sees is therefore: a coalesced read stream with no reuse, plus
//! infrequent scattered read-modify-writes over a bin array much larger
//! than the cache — the "mostly long reuse distances, dominated by
//! compulsory misses" profile Figure 3 shows for HG.

use crate::pattern::{desync, alu_block, coalesced, scatter, warp_rng, AddrSpace};
use crate::registry::Scale;
use gpu_sim::isa::TraceOp;
use gpu_sim::{GridDesc, Kernel};

/// Histogram model. See the module docs.
pub struct Hg {
    ctas: usize,
    warps: usize,
    iters: usize,
    pixels: u64,
    bins: u64,
    bin_bytes: u64,
    seed: u64,
}

impl Hg {
    /// Build at the given scale.
    pub fn new(scale: Scale) -> Self {
        let (ctas, warps, iters) = match scale {
            Scale::Tiny => (4, 2, 8),
            Scale::Full => (96, 4, 96),
        };
        let mut mem = AddrSpace::new();
        // 64 Mi of pixel input; 16 Ki bins of 4 B (64 KB — four L1Ds).
        let pixels = mem.alloc(64 << 20);
        let bin_bytes = 64 << 10;
        let bins = mem.alloc(bin_bytes);
        Hg { ctas, warps, iters, pixels, bins, bin_bytes, seed: 0x4847 }
    }
}

impl Kernel for Hg {
    fn name(&self) -> &str {
        "HG"
    }

    fn grid(&self) -> GridDesc {
        GridDesc { num_ctas: self.ctas, warps_per_cta: self.warps }
    }

    fn warp_ops(&self, cta: usize, warp: usize) -> Vec<TraceOp> {
        let mut rng = warp_rng(self.seed, cta, warp);
        let mut ops = Vec::new();
        let mut apc = 64; // ALU pcs live above the memory-pc space
        let gwarp = (cta * self.warps + warp) as u64;
        desync(&mut ops, &mut apc, gwarp);
        for i in 0..self.iters {
            // Rotate registers so consecutive batches overlap in flight.
            let r = 1 + ((i % 2) as u8) * 8;
            // Stream one 128 B batch of pixels (never revisited).
            let batch = self.pixels + (gwarp * self.iters as u64 + i as u64) * 128;
            ops.push(TraceOp::load(0, r, coalesced(batch)));
            // Shared-memory binning stands in as ALU work.
            alu_block(&mut ops, &mut apc, 26, r);
            // Every 4th batch merges a few bins into the global array.
            if i % 4 == 3 {
                let addrs = scatter(&mut rng, self.bins, self.bin_bytes, 8);
                ops.push(TraceOp::load(1, r + 2, addrs.clone()));
                alu_block(&mut ops, &mut apc, 4, r + 2);
                ops.push(TraceOp::store(2, addrs).with_srcs([r + 2]));
            }
        }
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::static_mem_ratio;
    use gpu_sim::isa::OpKind;

    #[test]
    fn is_cache_sufficient() {
        let k = Hg::new(Scale::Tiny);
        assert!(static_mem_ratio(&k) < 0.01);
    }

    #[test]
    fn pixel_stream_never_repeats_a_line() {
        let k = Hg::new(Scale::Tiny);
        let mut lines = std::collections::HashSet::new();
        for cta in 0..2 {
            for w in 0..2 {
                for op in k.warp_ops(cta, w) {
                    if let OpKind::Mem { addrs, is_write: false } = &op.kind {
                        if op.pc == 0 {
                            assert!(lines.insert(addrs[0] / 128), "pixel line revisited");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn bin_updates_stay_in_bin_region() {
        let k = Hg::new(Scale::Tiny);
        for op in k.warp_ops(0, 0) {
            if let OpKind::Mem { addrs, .. } = &op.kind {
                if op.pc == 1 || op.pc == 2 {
                    for &a in addrs {
                        assert!((k.bins..k.bins + k.bin_bytes).contains(&a));
                    }
                }
            }
        }
    }
}
