//! HG — Histogram (CUDA Samples, Cache Sufficient).
//!
//! The real 64M-element histogram streams pixel data once (compulsory
//! misses), accumulates into per-block shared-memory histograms, and
//! only occasionally merges into the global bin array. What the L1D
//! sees is therefore: a coalesced read stream with no reuse, plus
//! infrequent scattered read-modify-writes over a bin array much larger
//! than the cache — the "mostly long reuse distances, dominated by
//! compulsory misses" profile Figure 3 shows for HG.

use crate::gen::{GenStream, SegmentSource, WarpCtx};
use crate::pattern::{alu_block, coalesced, desync, scatter_into, AddrSpace};
use crate::registry::Scale;
use gpu_sim::isa::TraceOp;
use gpu_sim::{GridDesc, Kernel, OpStream};

/// Histogram model. See the module docs.
#[derive(Clone)]
pub struct Hg {
    ctas: usize,
    warps: usize,
    iters: usize,
    pixels: u64,
    bins: u64,
    bin_bytes: u64,
    seed: u64,
}

impl Hg {
    /// Build at the given scale.
    pub fn new(scale: Scale) -> Self {
        let (ctas, warps, iters) = match scale {
            Scale::Tiny => (4, 2, 8),
            Scale::Full | Scale::Scaled(_) => (96, 4, 96),
        };
        let iters = iters * scale.factor() as usize;
        let mut mem = AddrSpace::new();
        // 64 Mi of pixel input (grown with the scale factor so the
        // longer stream never walks into the bin region); 16 Ki bins of
        // 4 B (64 KB — four L1Ds).
        let pixels = mem.alloc((64 << 20) * scale.factor());
        let bin_bytes = 64 << 10;
        let bins = mem.alloc(bin_bytes);
        Hg { ctas, warps, iters, pixels, bins, bin_bytes, seed: 0x4847 }
    }
}

impl Kernel for Hg {
    fn name(&self) -> &str {
        "HG"
    }

    fn grid(&self) -> GridDesc {
        GridDesc { num_ctas: self.ctas, warps_per_cta: self.warps }
    }

    fn warp_stream(&self, cta: usize, warp: usize) -> Box<dyn OpStream> {
        Box::new(GenStream::new(HgGen { app: self.clone(), ctx: WarpCtx::new(self.seed, cta, warp) }))
    }
}

/// Segment 0 = desync prologue; segment 1 + i = pixel batch `i`.
struct HgGen {
    app: Hg,
    ctx: WarpCtx,
}

impl SegmentSource for HgGen {
    fn emit(&mut self, seg: u64, out: &mut Vec<TraceOp>) -> bool {
        let gwarp = (self.ctx.cta * self.app.warps + self.ctx.warp) as u64;
        if seg == 0 {
            desync(out, &mut self.ctx.apc, gwarp);
            return true;
        }
        let i = (seg - 1) as usize;
        if i >= self.app.iters {
            return false;
        }
        // Rotate registers so consecutive batches overlap in flight.
        let r = 1 + ((i % 2) as u8) * 8;
        // Stream one 128 B batch of pixels (never revisited).
        let batch = self.app.pixels + (gwarp * self.app.iters as u64 + i as u64) * 128;
        out.push(TraceOp::load(0, r, coalesced(batch)));
        // Shared-memory binning stands in as ALU work.
        alu_block(out, &mut self.ctx.apc, 26, r);
        // Every 4th batch merges a few bins into the global array.
        if i % 4 == 3 {
            self.ctx.scratch.clear();
            scatter_into(&mut self.ctx.rng, &mut self.ctx.scratch, self.app.bins, self.app.bin_bytes, 8);
            out.push(TraceOp::load(1, r + 2, self.ctx.scratch.clone()));
            alu_block(out, &mut self.ctx.apc, 4, r + 2);
            out.push(TraceOp::store(2, self.ctx.scratch.clone()).with_srcs([r + 2]));
        }
        true
    }

    fn reset(&mut self) {
        self.ctx.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::static_mem_ratio;
    use gpu_sim::isa::OpKind;

    #[test]
    fn is_cache_sufficient() {
        let k = Hg::new(Scale::Tiny);
        assert!(static_mem_ratio(&k) < 0.01);
    }

    #[test]
    fn pixel_stream_never_repeats_a_line() {
        let k = Hg::new(Scale::Tiny);
        let mut lines = std::collections::HashSet::new();
        for cta in 0..2 {
            for w in 0..2 {
                for op in k.warp_ops(cta, w) {
                    if let OpKind::Mem { addrs, is_write: false } = &op.kind {
                        if op.pc == 0 {
                            assert!(lines.insert(addrs[0] / 128), "pixel line revisited");
                        }
                    }
                }
            }
        }
    }

    #[test]
    fn bin_updates_stay_in_bin_region() {
        let k = Hg::new(Scale::Tiny);
        for op in k.warp_ops(0, 0) {
            if let OpKind::Mem { addrs, .. } = &op.kind {
                if op.pc == 1 || op.pc == 2 {
                    for &a in addrs {
                        assert!((k.bins..k.bins + k.bin_bytes).contains(&a));
                    }
                }
            }
        }
    }

    #[test]
    fn scaled_one_is_trace_identical_to_full() {
        let full = Hg::new(Scale::Full);
        let scaled = Hg::new(Scale::Scaled(1));
        assert_eq!(full.warp_ops(3, 1), scaled.warp_ops(3, 1));
    }

    #[test]
    fn scale_multiplies_trace_length() {
        let f1 = Hg::new(Scale::Scaled(1)).warp_ops(0, 0).len();
        let f10 = Hg::new(Scale::Scaled(10)).warp_ops(0, 0).len();
        assert!(f10 > 9 * f1, "{f10} vs {f1}");
    }
}
