//! BT — B+tree (Rodinia, Cache Sufficient).
//!
//! Batched key lookups walking a four-level B+tree. Sorted query
//! batches keep the upper levels well coalesced and hot — the root and
//! second level hit almost always (BT has one of the highest baseline
//! hit rates in Figure 12a) — while leaf probes scatter over a large
//! region. Stall-Bypass throwing those upper-level reuses away is what
//! costs it 12 % on BT in §6.1.1.

use crate::gen::{GenStream, SegmentSource, WarpCtx};
use crate::pattern::{alu_block, broadcast, desync, scatter, AddrSpace};
use crate::registry::Scale;
use gpu_sim::isa::TraceOp;
use gpu_sim::{GridDesc, Kernel, OpStream};

/// B+tree lookup model. See the module docs.
#[derive(Clone)]
pub struct Bt {
    ctas: usize,
    warps: usize,
    queries: usize,
    root: u64,
    level1: u64,
    level2: u64,
    leaves: u64,
    seed: u64,
}

impl Bt {
    /// Build at the given scale.
    pub fn new(scale: Scale) -> Self {
        let (ctas, warps, queries) = match scale {
            Scale::Tiny => (4, 2, 4),
            Scale::Full | Scale::Scaled(_) => (64, 6, 20),
        };
        let queries = queries * scale.factor() as usize;
        let mut mem = AddrSpace::new();
        Bt {
            ctas,
            warps,
            queries,
            root: mem.alloc(128),          // one line
            level1: mem.alloc(4 << 10),    // 32 lines, resident
            level2: mem.alloc(128 << 10),  // 1 Ki lines, partly resident
            leaves: mem.alloc(8 << 20),    // far beyond any L1
            seed: 0x4254,
        }
    }
}

impl Kernel for Bt {
    fn name(&self) -> &str {
        "BT"
    }

    fn grid(&self) -> GridDesc {
        GridDesc { num_ctas: self.ctas, warps_per_cta: self.warps }
    }

    fn warp_stream(&self, cta: usize, warp: usize) -> Box<dyn OpStream> {
        Box::new(GenStream::new(BtGen { app: self.clone(), ctx: WarpCtx::new(self.seed, cta, warp) }))
    }
}

/// Segment 0 = desync prologue; segment 1 + q = query `q`'s tree walk.
struct BtGen {
    app: Bt,
    ctx: WarpCtx,
}

impl SegmentSource for BtGen {
    fn emit(&mut self, seg: u64, out: &mut Vec<TraceOp>) -> bool {
        if seg == 0 {
            desync(out, &mut self.ctx.apc, (self.ctx.cta * 64 + self.ctx.warp) as u64);
            return true;
        }
        let q = (seg - 1) as usize;
        if q >= self.app.queries {
            return false;
        }
        let rb = 1 + ((q % 2) as u8) * 8;
        // Root: one broadcast line, hot across every warp.
        out.push(TraceOp::load(0, rb, broadcast(self.app.root)));
        alu_block(out, &mut self.ctx.apc, 30, rb);
        // Level 1: sorted keys land in a couple of nodes.
        let l1 = scatter(&mut self.ctx.rng, self.app.level1, 4 << 10, 2);
        out.push(TraceOp::load(1, rb + 2, l1));
        alu_block(out, &mut self.ctx.apc, 30, rb + 2);
        // Level 2: more nodes, still some sharing — sorted query
        // batches keep a warp inside a few nodes.
        let l2 = scatter(&mut self.ctx.rng, self.app.level2, 128 << 10, 4);
        out.push(TraceOp::load(2, rb + 4, l2));
        alu_block(out, &mut self.ctx.apc, 30, rb + 4);
        // Leaves: essentially random, compulsory territory.
        let lf = scatter(&mut self.ctx.rng, self.app.leaves, 8 << 20, 8);
        out.push(TraceOp::load(3, rb + 6, lf));
        alu_block(out, &mut self.ctx.apc, 30, rb + 6);
        true
    }

    fn reset(&mut self) {
        self.ctx.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::static_mem_ratio;
    use gpu_sim::isa::OpKind;

    #[test]
    fn is_cache_sufficient() {
        let r = static_mem_ratio(&Bt::new(Scale::Tiny));
        assert!(r < 0.01, "BT ratio {r:.4}");
    }

    #[test]
    fn root_is_shared_by_all_warps() {
        let k = Bt::new(Scale::Tiny);
        let root_line = k.root / 128;
        for w in 0..2 {
            let ops = k.warp_ops(0, w);
            let first_mem = ops.iter().find(|o| o.is_mem()).unwrap();
            match &first_mem.kind {
                OpKind::Mem { addrs, .. } => {
                    assert!(addrs.iter().all(|&a| a / 128 == root_line))
                }
                _ => unreachable!(),
            }
        }
    }

    #[test]
    fn levels_have_increasing_footprints() {
        let k = Bt::new(Scale::Tiny);
        let mut per_pc: std::collections::HashMap<u32, std::collections::HashSet<u64>> =
            Default::default();
        for cta in 0..k.ctas {
            for w in 0..k.warps {
                for op in k.warp_ops(cta, w) {
                    if let OpKind::Mem { addrs, .. } = &op.kind {
                        per_pc.entry(op.pc).or_default().extend(addrs.iter().map(|a| a / 128));
                    }
                }
            }
        }
        assert!(per_pc[&0].len() <= per_pc[&1].len());
        assert!(per_pc[&1].len() < per_pc[&2].len());
        assert!(per_pc[&2].len() < per_pc[&3].len());
    }
}
