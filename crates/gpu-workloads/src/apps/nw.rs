//! NW — Needleman-Wunsch (Rodinia, Cache Sufficient).
//!
//! Wavefront dynamic programming over a 1024×1024 score matrix: each
//! anti-diagonal step reads the row the previous step produced (short
//! reuse) plus one streamed row of the reference matrix. Memory is a
//! tiny share of the work — the paper singles NW out as an application
//! whose IPC barely moves however the L1D is managed (Figure 5).

use crate::gen::{GenStream, SegmentSource, WarpCtx};
use crate::pattern::{alu_block, coalesced, desync, AddrSpace};
use crate::registry::Scale;
use gpu_sim::isa::TraceOp;
use gpu_sim::{GridDesc, Kernel, OpStream};

/// Needleman-Wunsch model. See the module docs.
#[derive(Clone)]
pub struct Nw {
    ctas: usize,
    warps: usize,
    steps: usize,
    score: u64,
    reference: u64,
    row_bytes: u64,
}

impl Nw {
    /// Build at the given scale.
    pub fn new(scale: Scale) -> Self {
        let (ctas, warps, steps) = match scale {
            Scale::Tiny => (4, 2, 8),
            Scale::Full | Scale::Scaled(_) => (48, 6, 44),
        };
        let steps = steps * scale.factor() as usize;
        let mut mem = AddrSpace::new();
        let row_bytes = 1024 * 4;
        // Matrices grow with the scale factor so the deeper wavefront
        // stays inside its own region.
        let mat_bytes = 1024 * row_bytes * scale.factor();
        Nw {
            ctas,
            warps,
            steps,
            score: mem.alloc(mat_bytes),
            reference: mem.alloc(mat_bytes),
            row_bytes,
        }
    }
}

impl Kernel for Nw {
    fn name(&self) -> &str {
        "NW"
    }

    fn grid(&self) -> GridDesc {
        GridDesc { num_ctas: self.ctas, warps_per_cta: self.warps }
    }

    fn warp_stream(&self, cta: usize, warp: usize) -> Box<dyn OpStream> {
        Box::new(GenStream::new(NwGen { app: self.clone(), ctx: WarpCtx::new(0, cta, warp) }))
    }
}

/// Segment 0 = desync prologue; segment 1 + s = wavefront step `s`.
struct NwGen {
    app: Nw,
    ctx: WarpCtx,
}

impl SegmentSource for NwGen {
    fn emit(&mut self, seg: u64, out: &mut Vec<TraceOp>) -> bool {
        let strips = 1024 / 32;
        let gwarp = self.ctx.cta * self.app.warps + self.ctx.warp;
        if seg == 0 {
            desync(out, &mut self.ctx.apc, gwarp as u64);
            return true;
        }
        let s = seg - 1;
        if s >= self.app.steps as u64 {
            return false;
        }
        let col = ((gwarp % strips) * 32) as u64 * 4;
        let row0 = (gwarp / strips * self.app.steps) as u64 % 1000;
        let row = row0 + s + 1;
        // The previous diagonal's row (just written): up + up-left
        // share one line thanks to coalescing.
        let rb = 1 + ((s % 2) as u8) * 8;
        out.push(TraceOp::load(0, rb, coalesced(self.app.score + (row - 1) * self.app.row_bytes + col)));
        // The streamed reference matrix.
        out.push(TraceOp::load(1, rb + 2, coalesced(self.app.reference + row * self.app.row_bytes + col)));
        alu_block(out, &mut self.ctx.apc, 22, rb);
        out.push(TraceOp::store(2, coalesced(self.app.score + row * self.app.row_bytes + col)).with_srcs([rb + 2]));
        true
    }

    fn reset(&mut self) {
        self.ctx.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::static_mem_ratio;
    use gpu_sim::isa::OpKind;

    #[test]
    fn is_cache_sufficient() {
        assert!(static_mem_ratio(&Nw::new(Scale::Tiny)) < 0.01);
    }

    #[test]
    fn reads_previous_steps_output_row() {
        let k = Nw::new(Scale::Tiny);
        let ops = k.warp_ops(0, 0);
        let stores: Vec<u64> = ops
            .iter()
            .filter_map(|o| match &o.kind {
                OpKind::Mem { addrs, is_write: true } => Some(addrs[0] / 128),
                _ => None,
            })
            .collect();
        let loads0: Vec<u64> = ops
            .iter()
            .filter_map(|o| match &o.kind {
                OpKind::Mem { addrs, is_write: false } if o.pc == 0 => Some(addrs[0] / 128),
                _ => None,
            })
            .collect();
        // Step s+1 loads (pc0) the line step s stored.
        assert_eq!(stores[0], loads0[1]);
    }
}
