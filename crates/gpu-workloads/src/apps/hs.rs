//! HS — Hotspot (Rodinia, Cache Sufficient).
//!
//! Hotspot's 512×512 thermal simulation reads each cell's temperature,
//! its vertical neighbours and the power grid, with heavy floating-point
//! work per cell. A warp walking down a column strip re-reads the row it
//! just produced as the "up" neighbour of the next iteration — short
//! reuse distances — and the low memory-access ratio makes the kernel
//! compute-bound (Figure 5: insensitive to L1D size).

use crate::pattern::{desync, alu_block, coalesced, AddrSpace};
use crate::registry::Scale;
use gpu_sim::isa::TraceOp;
use gpu_sim::{GridDesc, Kernel};

/// Hotspot model. See the module docs.
pub struct Hs {
    ctas: usize,
    warps: usize,
    rows: usize,
    temp: u64,
    power: u64,
    out: u64,
    row_bytes: u64,
}

impl Hs {
    /// Build at the given scale.
    pub fn new(scale: Scale) -> Self {
        let (ctas, warps, rows) = match scale {
            Scale::Tiny => (4, 2, 8),
            Scale::Full => (64, 6, 48),
        };
        let mut mem = AddrSpace::new();
        let row_bytes = 512 * 4;
        Hs {
            ctas,
            warps,
            rows,
            temp: mem.alloc(512 * row_bytes),
            power: mem.alloc(512 * row_bytes),
            out: mem.alloc(512 * row_bytes),
            row_bytes,
        }
    }
}

impl Kernel for Hs {
    fn name(&self) -> &str {
        "HS"
    }

    fn grid(&self) -> GridDesc {
        GridDesc { num_ctas: self.ctas, warps_per_cta: self.warps }
    }

    fn warp_ops(&self, cta: usize, warp: usize) -> Vec<TraceOp> {
        let mut ops = Vec::new();
        let mut apc = 64;
        // Each warp owns a 32-column strip and walks `rows` rows down.
        let strips_per_row = 512 / 32;
        let gwarp = cta * self.warps + warp;
        desync(&mut ops, &mut apc, gwarp as u64);
        let col = ((gwarp % strips_per_row) * 32) as u64 * 4;
        let row0 = (gwarp / strips_per_row * self.rows) as u64 % 500;
        for r in 0..self.rows as u64 {
            // Rotate registers so consecutive rows overlap in flight.
            let rb = 1 + ((r % 2) as u8) * 8;
            let center = self.temp + (row0 + r + 1) * self.row_bytes + col;
            let up = center - self.row_bytes;
            let down = center + self.row_bytes;
            ops.push(TraceOp::load(0, rb, coalesced(center)));
            ops.push(TraceOp::load(1, rb + 2, coalesced(up)));
            ops.push(TraceOp::load(2, rb + 4, coalesced(down)));
            ops.push(TraceOp::load(3, rb + 6, coalesced(self.power + (row0 + r + 1) * self.row_bytes + col)));
            alu_block(&mut ops, &mut apc, 30, rb);
            ops.push(TraceOp::store(4, coalesced(self.out + (row0 + r + 1) * self.row_bytes + col)).with_srcs([rb + 2]));
        }
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::static_mem_ratio;
    use gpu_sim::isa::OpKind;

    #[test]
    fn is_cache_sufficient() {
        assert!(static_mem_ratio(&Hs::new(Scale::Tiny)) < 0.01);
    }

    #[test]
    fn down_row_is_reused_as_next_center() {
        let k = Hs::new(Scale::Tiny);
        let ops = k.warp_ops(0, 0);
        let line_of = |pc: u32, nth: usize| {
            ops.iter()
                .filter(|o| o.pc == pc && o.is_mem())
                .nth(nth)
                .and_then(|o| match &o.kind {
                    OpKind::Mem { addrs, .. } => Some(addrs[0] / 128),
                    _ => None,
                })
                .unwrap()
        };
        // The "down" line of iteration r equals the "center" line of
        // iteration r+1 -> short reuse distance.
        assert_eq!(line_of(2, 0), line_of(0, 1));
    }
}
