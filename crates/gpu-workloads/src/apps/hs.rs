//! HS — Hotspot (Rodinia, Cache Sufficient).
//!
//! Hotspot's 512×512 thermal simulation reads each cell's temperature,
//! its vertical neighbours and the power grid, with heavy floating-point
//! work per cell. A warp walking down a column strip re-reads the row it
//! just produced as the "up" neighbour of the next iteration — short
//! reuse distances — and the low memory-access ratio makes the kernel
//! compute-bound (Figure 5: insensitive to L1D size).

use crate::gen::{GenStream, SegmentSource, WarpCtx};
use crate::pattern::{alu_block, coalesced, desync, AddrSpace};
use crate::registry::Scale;
use gpu_sim::isa::TraceOp;
use gpu_sim::{GridDesc, Kernel, OpStream};

/// Hotspot model. See the module docs.
#[derive(Clone)]
pub struct Hs {
    ctas: usize,
    warps: usize,
    rows: usize,
    temp: u64,
    power: u64,
    out: u64,
    row_bytes: u64,
}

impl Hs {
    /// Build at the given scale.
    pub fn new(scale: Scale) -> Self {
        let (ctas, warps, rows) = match scale {
            Scale::Tiny => (4, 2, 8),
            Scale::Full | Scale::Scaled(_) => (64, 6, 48),
        };
        let rows = rows * scale.factor() as usize;
        let mut mem = AddrSpace::new();
        let row_bytes = 512 * 4;
        // Grids grow with the scale factor so the deeper row walk stays
        // inside its own region.
        let grid_bytes = 512 * row_bytes * scale.factor();
        Hs {
            ctas,
            warps,
            rows,
            temp: mem.alloc(grid_bytes),
            power: mem.alloc(grid_bytes),
            out: mem.alloc(grid_bytes),
            row_bytes,
        }
    }
}

impl Kernel for Hs {
    fn name(&self) -> &str {
        "HS"
    }

    fn grid(&self) -> GridDesc {
        GridDesc { num_ctas: self.ctas, warps_per_cta: self.warps }
    }

    fn warp_stream(&self, cta: usize, warp: usize) -> Box<dyn OpStream> {
        Box::new(GenStream::new(HsGen { app: self.clone(), ctx: WarpCtx::new(0, cta, warp) }))
    }
}

/// Segment 0 = desync prologue; segment 1 + r = row `r` of the strip.
struct HsGen {
    app: Hs,
    ctx: WarpCtx,
}

impl SegmentSource for HsGen {
    fn emit(&mut self, seg: u64, out: &mut Vec<TraceOp>) -> bool {
        // Each warp owns a 32-column strip and walks `rows` rows down.
        let strips_per_row = 512 / 32;
        let gwarp = self.ctx.cta * self.app.warps + self.ctx.warp;
        if seg == 0 {
            desync(out, &mut self.ctx.apc, gwarp as u64);
            return true;
        }
        let r = seg - 1;
        if r >= self.app.rows as u64 {
            return false;
        }
        let col = ((gwarp % strips_per_row) * 32) as u64 * 4;
        let row0 = (gwarp / strips_per_row * self.app.rows) as u64 % 500;
        // Rotate registers so consecutive rows overlap in flight.
        let rb = 1 + ((r % 2) as u8) * 8;
        let center = self.app.temp + (row0 + r + 1) * self.app.row_bytes + col;
        let up = center - self.app.row_bytes;
        let down = center + self.app.row_bytes;
        out.push(TraceOp::load(0, rb, coalesced(center)));
        out.push(TraceOp::load(1, rb + 2, coalesced(up)));
        out.push(TraceOp::load(2, rb + 4, coalesced(down)));
        out.push(TraceOp::load(3, rb + 6, coalesced(self.app.power + (row0 + r + 1) * self.app.row_bytes + col)));
        alu_block(out, &mut self.ctx.apc, 30, rb);
        out.push(
            TraceOp::store(4, coalesced(self.app.out + (row0 + r + 1) * self.app.row_bytes + col))
                .with_srcs([rb + 2]),
        );
        true
    }

    fn reset(&mut self) {
        self.ctx.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::static_mem_ratio;
    use gpu_sim::isa::OpKind;

    #[test]
    fn is_cache_sufficient() {
        assert!(static_mem_ratio(&Hs::new(Scale::Tiny)) < 0.01);
    }

    #[test]
    fn down_row_is_reused_as_next_center() {
        let k = Hs::new(Scale::Tiny);
        let ops = k.warp_ops(0, 0);
        let line_of = |pc: u32, nth: usize| {
            ops.iter()
                .filter(|o| o.pc == pc && o.is_mem())
                .nth(nth)
                .and_then(|o| match &o.kind {
                    OpKind::Mem { addrs, .. } => Some(addrs[0] / 128),
                    _ => None,
                })
                .unwrap()
        };
        // The "down" line of iteration r equals the "center" line of
        // iteration r+1 -> short reuse distance.
        assert_eq!(line_of(2, 0), line_of(0, 1));
    }
}
