//! SR2K — Symmetric Rank-2k update (Polybench, 256×256, Cache
//! Insufficient).
//!
//! `C[i][j] += A[i][k]·B[j][k] + B[i][k]·A[j][k]`: SRK with the gather
//! working set doubled (columns of both A and B). The combined strided
//! set is well past what doubling the cache to 8 ways captures, while
//! protected lines still serve every pass — this is one of the two
//! applications (§6.1.2) where DLP on a 16 KB cache *beats* the 32 KB
//! configuration.

use crate::gen::{GenStream, SegmentSource, WarpCtx};
use crate::pattern::{AddrSpace, F4, coalesced, desync, strided};
use crate::registry::Scale;
use gpu_sim::isa::TraceOp;
use gpu_sim::{GridDesc, Kernel, OpStream};

/// Symmetric rank-2k model. See the module docs.
#[derive(Clone)]
pub struct Sr2k {
    ctas: usize,
    warps: usize,
    n: u64,
    ksteps: usize,
    a: u64,
    b: u64,
    c: u64,
}

impl Sr2k {
    /// Build at the given scale.
    pub fn new(scale: Scale) -> Self {
        let (ctas, warps, ksteps) = match scale {
            Scale::Tiny => (8, 4, 20),
            Scale::Full | Scale::Scaled(_) => (64, 6, 48),
        };
        let ksteps = ksteps * scale.factor() as usize;
        let n = 256u64;
        let mut mem = AddrSpace::new();
        Sr2k {
            ctas,
            warps,
            n,
            ksteps,
            a: mem.alloc(n * n * F4),
            b: mem.alloc(n * n * F4),
            c: mem.alloc(n * n * F4),
        }
    }
}

impl Kernel for Sr2k {
    fn name(&self) -> &str {
        "SR2K"
    }

    fn grid(&self) -> GridDesc {
        GridDesc { num_ctas: self.ctas, warps_per_cta: self.warps }
    }

    fn warp_stream(&self, cta: usize, warp: usize) -> Box<dyn OpStream> {
        Box::new(GenStream::new(Sr2kGen { app: self.clone(), ctx: WarpCtx::new(0, cta, warp) }))
    }
}

/// Segment 0 = desync prologue; segment 1 + n = the unroll-and-jam
/// group starting at k-step `2n`; one final segment = the C store.
struct Sr2kGen {
    app: Sr2k,
    ctx: WarpCtx,
}

impl SegmentSource for Sr2kGen {
    fn emit(&mut self, seg: u64, out: &mut Vec<TraceOp>) -> bool {
        let gwarp = (self.ctx.cta * self.app.warps + self.ctx.warp) as u64;
        if seg == 0 {
            desync(out, &mut self.ctx.apc, gwarp);
            return true;
        }
        let row_bytes = self.app.n * F4;
        let i = gwarp % self.app.n;
        let j0 = (self.ctx.cta as u64 * 32) % self.app.n;
        let ksteps = self.app.ksteps as u64;
        let ngroups = ksteps.div_ceil(2);
        let step = (seg - 1) * 2;
        if seg - 1 < ngroups {
            // The A[i][*]/B[i][*] row segments are staged once per 32-k
            // tile; the L1D sees the two column gathers, a working set
            // twice SRK's — past what 8 ways capture, within
            // protection's reach.
            if step % 32 == 0 {
                let k = (gwarp % 8 + step * 8) % self.app.n;
                out.push(TraceOp::load(0, 20, coalesced(self.app.a + i * row_bytes + (k / 32) * 128)));
                out.push(TraceOp::load(1, 22, coalesced(self.app.b + i * row_bytes + (k / 32) * 128)));
            }
            let group = (ksteps - step).min(2);
            for g in 0..group {
                let rb = 1 + (g as u8) * 8;
                let k = (gwarp % 8 + (step + g) * 8) % self.app.n;
                out.push(TraceOp::load(2, rb, strided(self.app.a + j0 * row_bytes + k * F4, row_bytes)));
                out.push(TraceOp::load(3, rb + 1, strided(self.app.b + j0 * row_bytes + k * F4, row_bytes)));
            }
            for g in 0..group {
                let rb = 1 + (g as u8) * 8;
                out.push(TraceOp::alu(64, 4).with_srcs([rb, 20]).with_dst(rb + 2));
                out.push(TraceOp::alu(64, 4).with_srcs([rb + 1, 22]).with_dst(rb + 3));
                out.push(TraceOp::alu(64, 4).with_srcs([rb + 2, rb + 3]).with_dst(rb + 4));
            }
            return true;
        }
        if seg - 1 == ngroups {
            out.push(TraceOp::store(4, strided(self.app.c + i * row_bytes + j0 * F4, F4)).with_srcs([2]));
            return true;
        }
        false
    }

    fn reset(&mut self) {
        self.ctx.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::static_mem_ratio;
    use gpu_sim::isa::OpKind;

    #[test]
    fn is_cache_insufficient() {
        let r = static_mem_ratio(&Sr2k::new(Scale::Tiny));
        assert!(r >= 0.01, "SR2K ratio {r:.4}");
    }

    #[test]
    fn gather_working_set_doubles_srk() {
        let mine = Sr2k::new(Scale::Tiny);
        let mut lines = std::collections::HashSet::new();
        for op in mine.warp_ops(0, 0) {
            if let OpKind::Mem { addrs, is_write: false } = &op.kind {
                if op.pc == 2 || op.pc == 3 {
                    lines.extend(addrs.iter().map(|a| a / 128));
                }
            }
        }
        // 32 A-lines + 32 B-lines per k-window.
        assert!(lines.len() >= 64);
    }
}
