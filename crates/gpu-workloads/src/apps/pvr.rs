//! PVR — Page View Rank (Mars, Cache Insufficient).
//!
//! The MapReduce page-view-rank job streams 250K log records and
//! accumulates per-page counters in a rank table. Records are
//! compulsory traffic; the rank table is several caches large and keyed
//! by page popularity, so its lines come back at long reuse distances —
//! the profile that makes PVR thrash the baseline and respond to
//! bypassing more than to extra hits (§6.3.2 notes DLP wins on PVR with
//! *fewer* hits than baseline).

use crate::gen::{GenStream, SegmentSource, WarpCtx};
use crate::pattern::{alu_block, coalesced, desync, scatter_into, AddrSpace};
use crate::registry::Scale;
use gpu_sim::isa::TraceOp;
use gpu_sim::{GridDesc, Kernel, OpStream};
use rand::Rng;

/// Page View Rank model. See the module docs.
#[derive(Clone)]
pub struct Pvr {
    ctas: usize,
    warps: usize,
    iters: usize,
    records: u64,
    ranks: u64,
    rank_bytes: u64,
    hot_bytes: u64,
    seed: u64,
}

impl Pvr {
    /// Build at the given scale.
    pub fn new(scale: Scale) -> Self {
        let (ctas, warps, iters) = match scale {
            Scale::Tiny => (8, 4, 12),
            Scale::Full | Scale::Scaled(_) => (96, 6, 28),
        };
        let iters = iters * scale.factor() as usize;
        let mut mem = AddrSpace::new();
        let rank_bytes = 256 << 10;
        Pvr {
            ctas,
            warps,
            iters,
            // The streamed record log grows with the scale factor so
            // the longer stream stays inside its own region.
            records: mem.alloc((64 << 20) * scale.factor()),
            ranks: mem.alloc(rank_bytes),
            rank_bytes,
            // 20% of pages take 80% of the hits.
            hot_bytes: 32 << 10,
            seed: 0x5652,
        }
    }
}

impl Kernel for Pvr {
    fn name(&self) -> &str {
        "PVR"
    }

    fn grid(&self) -> GridDesc {
        GridDesc { num_ctas: self.ctas, warps_per_cta: self.warps }
    }

    fn warp_stream(&self, cta: usize, warp: usize) -> Box<dyn OpStream> {
        Box::new(GenStream::new(PvrGen { app: self.clone(), ctx: WarpCtx::new(self.seed, cta, warp) }))
    }
}

/// Segment 0 = desync prologue; segment 1 + i = record `i`.
struct PvrGen {
    app: Pvr,
    ctx: WarpCtx,
}

impl SegmentSource for PvrGen {
    fn emit(&mut self, seg: u64, out: &mut Vec<TraceOp>) -> bool {
        let gwarp = (self.ctx.cta * self.app.warps + self.ctx.warp) as u64;
        if seg == 0 {
            desync(out, &mut self.ctx.apc, gwarp);
            return true;
        }
        let i = seg - 1;
        if i >= self.app.iters as u64 {
            return false;
        }
        // One record = two lines of log data, streamed.
        let rb = 1 + ((i % 2) as u8) * 8;
        let rec = self.app.records + (gwarp * self.app.iters as u64 + i) * 256;
        out.push(TraceOp::load(0, rb, coalesced(rec)));
        out.push(TraceOp::load(1, rb + 1, coalesced(rec + 128)));
        alu_block(out, &mut self.ctx.apc, 6, rb);
        // Rank-table update: popularity-skewed scatter.
        let region = if self.ctx.rng.gen_bool(0.7) { self.app.hot_bytes } else { self.app.rank_bytes };
        self.ctx.scratch.clear();
        scatter_into(&mut self.ctx.rng, &mut self.ctx.scratch, self.app.ranks, region, 16);
        out.push(TraceOp::load(2, rb + 2, self.ctx.scratch.clone()));
        alu_block(out, &mut self.ctx.apc, 4, rb + 2);
        out.push(TraceOp::store(3, self.ctx.scratch.clone()).with_srcs([rb + 2]));
        true
    }

    fn reset(&mut self) {
        self.ctx.reset();
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::static_mem_ratio;
    use gpu_sim::isa::OpKind;

    #[test]
    fn is_cache_insufficient() {
        let r = static_mem_ratio(&Pvr::new(Scale::Tiny));
        assert!(r >= 0.01, "PVR ratio {r:.4}");
    }

    #[test]
    fn rank_accesses_are_skewed_toward_hot_pages() {
        let k = Pvr::new(Scale::Full);
        let mut hot = 0u64;
        let mut total = 0u64;
        for w in 0..4 {
            for op in k.warp_ops(0, w) {
                if let OpKind::Mem { addrs, is_write: false } = &op.kind {
                    if op.pc == 2 {
                        for &a in addrs {
                            total += 1;
                            if a < k.ranks + k.hot_bytes {
                                hot += 1;
                            }
                        }
                    }
                }
            }
        }
        assert!(total > 0);
        let frac = hot as f64 / total as f64;
        assert!(frac > 0.6, "hot fraction {frac:.2} too low");
    }
}
