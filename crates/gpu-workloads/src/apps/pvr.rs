//! PVR — Page View Rank (Mars, Cache Insufficient).
//!
//! The MapReduce page-view-rank job streams 250K log records and
//! accumulates per-page counters in a rank table. Records are
//! compulsory traffic; the rank table is several caches large and keyed
//! by page popularity, so its lines come back at long reuse distances —
//! the profile that makes PVR thrash the baseline and respond to
//! bypassing more than to extra hits (§6.3.2 notes DLP wins on PVR with
//! *fewer* hits than baseline).

use crate::pattern::{desync, alu_block, coalesced, scatter, warp_rng, AddrSpace};
use crate::registry::Scale;
use gpu_sim::isa::TraceOp;
use gpu_sim::{GridDesc, Kernel};
use rand::Rng;

/// Page View Rank model. See the module docs.
pub struct Pvr {
    ctas: usize,
    warps: usize,
    iters: usize,
    records: u64,
    ranks: u64,
    rank_bytes: u64,
    hot_bytes: u64,
    seed: u64,
}

impl Pvr {
    /// Build at the given scale.
    pub fn new(scale: Scale) -> Self {
        let (ctas, warps, iters) = match scale {
            Scale::Tiny => (8, 4, 12),
            Scale::Full => (96, 6, 28),
        };
        let mut mem = AddrSpace::new();
        let rank_bytes = 256 << 10;
        Pvr {
            ctas,
            warps,
            iters,
            records: mem.alloc(64 << 20),
            ranks: mem.alloc(rank_bytes),
            rank_bytes,
            // 20% of pages take 80% of the hits.
            hot_bytes: 32 << 10,
            seed: 0x5652,
        }
    }
}

impl Kernel for Pvr {
    fn name(&self) -> &str {
        "PVR"
    }

    fn grid(&self) -> GridDesc {
        GridDesc { num_ctas: self.ctas, warps_per_cta: self.warps }
    }

    fn warp_ops(&self, cta: usize, warp: usize) -> Vec<TraceOp> {
        let mut rng = warp_rng(self.seed, cta, warp);
        let mut ops = Vec::new();
        let mut apc = 64;
        let gwarp = (cta * self.warps + warp) as u64;
        desync(&mut ops, &mut apc, gwarp);
        for i in 0..self.iters as u64 {
            // One record = two lines of log data, streamed.
            let rb = 1 + ((i % 2) as u8) * 8;
            let rec = self.records + (gwarp * self.iters as u64 + i) * 256;
            ops.push(TraceOp::load(0, rb, coalesced(rec)));
            ops.push(TraceOp::load(1, rb + 1, coalesced(rec + 128)));
            alu_block(&mut ops, &mut apc, 6, rb);
            // Rank-table update: popularity-skewed scatter.
            let region = if rng.gen_bool(0.7) { self.hot_bytes } else { self.rank_bytes };
            let addrs = scatter(&mut rng, self.ranks, region, 16);
            ops.push(TraceOp::load(2, rb + 2, addrs.clone()));
            alu_block(&mut ops, &mut apc, 4, rb + 2);
            ops.push(TraceOp::store(3, addrs).with_srcs([rb + 2]));
        }
        ops
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::registry::static_mem_ratio;
    use gpu_sim::isa::OpKind;

    #[test]
    fn is_cache_insufficient() {
        let r = static_mem_ratio(&Pvr::new(Scale::Tiny));
        assert!(r >= 0.01, "PVR ratio {r:.4}");
    }

    #[test]
    fn rank_accesses_are_skewed_toward_hot_pages() {
        let k = Pvr::new(Scale::Full);
        let mut hot = 0u64;
        let mut total = 0u64;
        for w in 0..4 {
            for op in k.warp_ops(0, w) {
                if let OpKind::Mem { addrs, is_write: false } = &op.kind {
                    if op.pc == 2 {
                        for &a in addrs {
                            total += 1;
                            if a < k.ranks + k.hot_bytes {
                                hot += 1;
                            }
                        }
                    }
                }
            }
        }
        assert!(total > 0);
        let frac = hot as f64 / total as f64;
        assert!(frac > 0.6, "hot fraction {frac:.2} too low");
    }
}
