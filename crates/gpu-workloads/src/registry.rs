//! Table 2: the benchmark inventory, and constructors for each model.

use gpu_sim::isa::OpKind;
use gpu_sim::{coalescer, Kernel};
use serde::{Deserialize, Serialize};

/// The paper's application classification (§3.2): Cache Sufficient
/// applications have a memory-access ratio below 1 %, Cache Insufficient
/// ones above.
#[derive(Clone, Copy, Debug, PartialEq, Eq, Serialize, Deserialize)]
pub enum AppClass {
    /// Cache Sufficient — performance insensitive to the L1D.
    CS,
    /// Cache Insufficient — L1D behaviour dominates performance.
    CI,
}

/// One row of Table 2.
#[derive(Clone, Copy, Debug, Serialize, Deserialize)]
pub struct BenchSpec {
    /// Abbreviation used throughout the figures.
    pub abbr: &'static str,
    /// Full application name.
    pub name: &'static str,
    /// Source suite.
    pub suite: &'static str,
    /// CS/CI classification.
    pub class: AppClass,
    /// The paper's input description.
    pub input: &'static str,
}

/// Model size: `Tiny` for unit tests (sub-second), `Full` for the
/// experiment harness (matches the figures in EXPERIMENTS.md).
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub enum Scale {
    /// A few CTAs — enough to exercise every code path.
    Tiny,
    /// The evaluation size used to regenerate the paper's figures.
    Full,
    /// `Full` dimensions with per-warp trace lengths and the streamed
    /// footprints multiplied by the factor — the ISSUE 10 scale axis
    /// (`DLP_SCALE=10|100|1000`). The grid stays at `Full` size so SM
    /// occupancy and resident-warp contention remain comparable along
    /// the axis; what grows is the work (and memory touched) per warp.
    /// `Scaled(1)` is trace-identical to `Full`.
    Scaled(u32),
}

impl Scale {
    /// The trace-length multiplier: 1 for `Tiny`/`Full`, the factor
    /// for `Scaled` (clamped to at least 1).
    pub fn factor(&self) -> u64 {
        match self {
            Scale::Scaled(f) => u64::from(*f).max(1),
            _ => 1,
        }
    }
}

/// All 18 applications, in Table 2 order.
pub fn registry() -> Vec<BenchSpec> {
    use AppClass::*;
    vec![
        BenchSpec { abbr: "HG", name: "Histogram", suite: "CUDA Samples", class: CS, input: "67108864" },
        BenchSpec { abbr: "HS", name: "Hotspot", suite: "Rodinia", class: CS, input: "512x512" },
        BenchSpec { abbr: "STEN", name: "3-D Stencil Operation", suite: "Parboil", class: CS, input: "512x512x64" },
        BenchSpec { abbr: "SC", name: "Separable Convolution", suite: "Rodinia", class: CS, input: "2048x512" },
        BenchSpec { abbr: "BP", name: "Back Propagation", suite: "Rodinia", class: CS, input: "65536" },
        BenchSpec { abbr: "SRAD", name: "Speckle Reducing Anisotropic Diffusion", suite: "Rodinia", class: CS, input: "512x512" },
        BenchSpec { abbr: "NW", name: "Needleman-Wunsch", suite: "Rodinia", class: CS, input: "1024x1024" },
        BenchSpec { abbr: "GEMM", name: "Matrix Multiply-add", suite: "Polybench", class: CS, input: "512X512X512" },
        BenchSpec { abbr: "BT", name: "B+tree", suite: "Rodinia", class: CS, input: "6000x3000" },
        BenchSpec { abbr: "CFD", name: "Computational Fluid Dynamics", suite: "Rodinia", class: CI, input: "97046" },
        BenchSpec { abbr: "PVR", name: "Page View Rank", suite: "Mars", class: CI, input: "250000" },
        BenchSpec { abbr: "SS", name: "Similarity Score", suite: "Mars", class: CI, input: "512x128" },
        BenchSpec { abbr: "BFS", name: "Breadth-First Search", suite: "Rodinia", class: CI, input: "65536" },
        BenchSpec { abbr: "MM", name: "Matrix Multiplication", suite: "Mars", class: CI, input: "256x256" },
        BenchSpec { abbr: "SRK", name: "Symmetric Rank-k", suite: "Polybench", class: CI, input: "256x256" },
        BenchSpec { abbr: "SR2K", name: "Symmetric Rank-2k", suite: "Polybench", class: CI, input: "256x256" },
        BenchSpec { abbr: "KM", name: "K-means", suite: "Rodinia", class: CI, input: "204800" },
        BenchSpec { abbr: "STR", name: "String Match", suite: "Mars", class: CI, input: "354984" },
    ]
}

/// Look up a spec by abbreviation.
pub fn spec(abbr: &str) -> BenchSpec {
    registry()
        .into_iter()
        .find(|s| s.abbr == abbr)
        .unwrap_or_else(|| panic!("unknown benchmark {abbr:?}"))
}

/// Instantiate a benchmark model by abbreviation.
pub fn build(abbr: &str, scale: Scale) -> Box<dyn Kernel> {
    use crate::apps::*;
    match abbr {
        "HG" => Box::new(hg::Hg::new(scale)),
        "HS" => Box::new(hs::Hs::new(scale)),
        "STEN" => Box::new(sten::Sten::new(scale)),
        "SC" => Box::new(sc::Sc::new(scale)),
        "BP" => Box::new(bp::Bp::new(scale)),
        "SRAD" => Box::new(srad::Srad::new(scale)),
        "NW" => Box::new(nw::Nw::new(scale)),
        "GEMM" => Box::new(gemm::Gemm::new(scale)),
        "BT" => Box::new(bt::Bt::new(scale)),
        "CFD" => Box::new(cfd::Cfd::new(scale)),
        "PVR" => Box::new(pvr::Pvr::new(scale)),
        "SS" => Box::new(ss::Ss::new(scale)),
        "BFS" => Box::new(bfs::Bfs::new(scale)),
        "MM" => Box::new(mm::Mm::new(scale)),
        "SRK" => Box::new(srk::Srk::new(scale)),
        "SR2K" => Box::new(sr2k::Sr2k::new(scale)),
        "KM" => Box::new(km::Km::new(scale)),
        "STR" => Box::new(str_match::StrMatch::new(scale)),
        other => panic!("unknown benchmark {other:?}"),
    }
}

/// Statically replay every warp trace of a kernel and count coalesced
/// memory transactions and thread instructions — the §3.2 ratio without
/// running the timing simulator. Used by Figure 6 and by the per-app
/// classification tests.
pub fn static_mem_profile(k: &dyn Kernel) -> (u64, u64) {
    let grid = k.grid();
    let mut txns = 0u64;
    let mut thread_insns = 0u64;
    for cta in 0..grid.num_ctas {
        for warp in 0..grid.warps_per_cta {
            for op in k.warp_ops(cta, warp) {
                thread_insns += op.active_lanes() as u64;
                if let OpKind::Mem { addrs, .. } = &op.kind {
                    txns += coalescer::coalesce(addrs, 128).len() as u64;
                }
            }
        }
    }
    (txns, thread_insns)
}

/// The §3.2 memory-access ratio computed statically.
pub fn static_mem_ratio(k: &dyn Kernel) -> f64 {
    let (txns, insns) = static_mem_profile(k);
    if insns == 0 {
        0.0
    } else {
        txns as f64 / insns as f64
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_matches_table2() {
        let r = registry();
        assert_eq!(r.len(), 18);
        assert_eq!(r.iter().filter(|s| s.class == AppClass::CS).count(), 9);
        assert_eq!(r.iter().filter(|s| s.class == AppClass::CI).count(), 9);
        let abbrs: std::collections::HashSet<_> = r.iter().map(|s| s.abbr).collect();
        assert_eq!(abbrs.len(), 18, "abbreviations are unique");
    }

    #[test]
    fn every_spec_builds_at_tiny_scale() {
        for s in registry() {
            let k = build(s.abbr, Scale::Tiny);
            let grid = k.grid();
            assert!(grid.num_ctas > 0 && grid.warps_per_cta > 0, "{}", s.abbr);
            assert!(grid.warps_per_cta <= 48, "{} CTA too large for an SM", s.abbr);
            let ops = k.warp_ops(0, 0);
            assert!(!ops.is_empty(), "{} warp 0 has no ops", s.abbr);
        }
    }

    #[test]
    #[should_panic(expected = "unknown benchmark")]
    fn unknown_abbreviation_panics() {
        build("NOPE", Scale::Tiny);
    }

    #[test]
    fn traces_are_deterministic() {
        for s in registry() {
            let a = build(s.abbr, Scale::Tiny).warp_ops(0, 0);
            let b = build(s.abbr, Scale::Tiny).warp_ops(0, 0);
            assert_eq!(a, b, "{} trace must be reproducible", s.abbr);
        }
    }

    #[test]
    fn classification_matches_static_ratio() {
        // The 1% memory-access-ratio threshold of §3.2 must separate the
        // models exactly as Table 2 classifies them.
        for s in registry() {
            let k = build(s.abbr, Scale::Tiny);
            let ratio = static_mem_ratio(k.as_ref());
            match s.class {
                AppClass::CS => {
                    assert!(ratio < 0.01, "{} ratio {ratio:.4} should be CS (<1%)", s.abbr)
                }
                AppClass::CI => {
                    assert!(ratio >= 0.01, "{} ratio {ratio:.4} should be CI (>=1%)", s.abbr)
                }
            }
        }
    }
}
