//! Stream ⇄ materialized equivalence: the streaming trace engine must
//! be observationally identical to fully materialized warp traces.
//!
//! Two layers of evidence:
//!
//! 1. **Op-sequence identity** — for every app, pulling a native
//!    generator stream op by op yields exactly `warp_ops`, `peek`
//!    always previews the next pull, and `reset` replays the identical
//!    sequence (the contract the sharded engine's misspeculation
//!    restarts depend on).
//! 2. **Whole-machine identity** — a full simulation fed through the
//!    `VecStream` compatibility adapter (eager materialization, the
//!    pre-streaming world) produces the same `RunStats` as the native
//!    O(1)-memory stream, across shard counts and with sampling on or
//!    off. Only `peak_warp_trace_bytes` may differ: that counter
//!    *measures* the materialization the adapter reintroduces.

use gpu_sim::isa::TraceOp;
use gpu_sim::sampling::SamplingConfig;
use gpu_sim::{GridDesc, Gpu, Kernel, OpStream, RunStats, SimConfig, VecStream};
use gpu_workloads::{build, registry, Scale};
use dlp_core::PolicyKind;

/// Wraps any kernel so every warp goes through the eager-materialization
/// adapter: exactly what the simulator consumed before the streaming
/// engine existed.
struct Materialized(Box<dyn Kernel>);

impl Kernel for Materialized {
    fn name(&self) -> &str {
        self.0.name()
    }

    fn grid(&self) -> GridDesc {
        self.0.grid()
    }

    fn warp_stream(&self, cta: usize, warp: usize) -> Box<dyn OpStream> {
        Box::new(VecStream::new(self.0.warp_ops(cta, warp)))
    }
}

/// Architectural view of a run: everything except the resident-memory
/// high-water mark, which legitimately differs between a whole-trace
/// adapter and an O(1) generator over the same op sequence.
fn arch(stats: &RunStats) -> RunStats {
    let mut s = stats.clone();
    s.peak_warp_trace_bytes = 0;
    s
}

fn run(kernel: Box<dyn Kernel>, cfg: SimConfig) -> RunStats {
    let mut gpu = Gpu::new(cfg, kernel);
    let stats = gpu.run().expect("simulation failed");
    assert!(stats.completed);
    stats
}

#[test]
fn native_streams_replay_their_materialized_traces() {
    for spec in registry() {
        let k = build(spec.abbr, Scale::Tiny);
        let grid = k.grid();
        // First and last warp of first and last CTA: the corner
        // coordinates where per-warp parameterization bugs live.
        let coords = [
            (0, 0),
            (0, grid.warps_per_cta - 1),
            (grid.num_ctas - 1, 0),
            (grid.num_ctas - 1, grid.warps_per_cta - 1),
        ];
        for (cta, warp) in coords {
            let want = k.warp_ops(cta, warp);
            let mut stream = k.warp_stream(cta, warp);
            let mut got: Vec<TraceOp> = Vec::new();
            loop {
                let previewed = stream.peek().cloned();
                let Some(op) = stream.next_op() else {
                    assert!(previewed.is_none(), "{}: peek past the end", spec.abbr);
                    break;
                };
                assert_eq!(
                    previewed.as_ref(),
                    Some(&op),
                    "{}: peek disagrees with next_op at index {}",
                    spec.abbr,
                    got.len()
                );
                got.push(op);
            }
            assert_eq!(got, want, "{}: stream ({cta},{warp}) diverges", spec.abbr);

            // Replay after reset must be byte-identical.
            stream.reset();
            let replay: Vec<TraceOp> = std::iter::from_fn(|| stream.next_op()).collect();
            assert_eq!(replay, want, "{}: reset replay diverges", spec.abbr);
        }
    }
}

#[test]
fn adapter_and_native_runs_are_architecturally_identical() {
    for spec in registry() {
        let cfg = SimConfig::tesla_m2090(PolicyKind::Baseline);
        let native = run(build(spec.abbr, Scale::Tiny), cfg);
        let adapted = run(
            Box::new(Materialized(build(spec.abbr, Scale::Tiny))),
            cfg,
        );
        assert_eq!(
            arch(&native),
            arch(&adapted),
            "{}: adapter run diverges from native stream",
            spec.abbr
        );
        // The adapter holds whole traces resident; the native stream
        // must never hold more than the adapter's high-water mark.
        assert!(
            native.peak_warp_trace_bytes <= adapted.peak_warp_trace_bytes,
            "{}: native stream ({} B) resident above the materialized bound ({} B)",
            spec.abbr,
            native.peak_warp_trace_bytes,
            adapted.peak_warp_trace_bytes
        );
    }
}

#[test]
fn equivalence_holds_under_sharding() {
    for app in ["KM", "BFS"] {
        for shards in [1usize, 2] {
            let cfg = SimConfig::tesla_m2090(PolicyKind::Dlp).with_shards(shards);
            let native = run(build(app, Scale::Tiny), cfg);
            let adapted = run(Box::new(Materialized(build(app, Scale::Tiny))), cfg);
            assert_eq!(
                arch(&native),
                arch(&adapted),
                "{app}: adapter diverges at {shards} shard(s)"
            );
        }
    }
}

#[test]
fn equivalence_holds_with_sampling_on_and_off() {
    let sampling = SamplingConfig { detail: 500, skip: 1500, warmup: 250, seed: 1 };
    for app in ["KM", "STR"] {
        for sampled in [false, true] {
            let mut cfg = SimConfig::tesla_m2090(PolicyKind::Dlp);
            if sampled {
                cfg = cfg.with_sampling(sampling);
            }
            let native = run(build(app, Scale::Tiny), cfg);
            let adapted = run(Box::new(Materialized(build(app, Scale::Tiny))), cfg);
            assert_eq!(
                arch(&native),
                arch(&adapted),
                "{app}: adapter diverges (sampling: {sampled})"
            );
        }
    }
}

#[test]
fn scaled_workloads_keep_resident_memory_flat() {
    // The scale axis's core claim, asserted in-process: multiplying
    // per-warp work by 10x leaves the per-warp resident footprint
    // unchanged, while the op count actually grows.
    for app in ["BFS", "STR"] {
        let tiny = build(app, Scale::Scaled(1));
        let scaled = build(app, Scale::Scaled(10));
        let mut a = tiny.warp_stream(0, 0);
        let mut b = scaled.warp_stream(0, 0);
        let (mut n_a, mut n_b) = (0u64, 0u64);
        while a.next_op().is_some() {
            n_a += 1;
        }
        while b.next_op().is_some() {
            n_b += 1;
        }
        assert!(n_b > n_a, "{app}: 10x scale did not grow the op stream");
        assert_eq!(
            a.peak_resident_bytes(),
            b.peak_resident_bytes(),
            "{app}: resident footprint grew with scale"
        );
    }
}
