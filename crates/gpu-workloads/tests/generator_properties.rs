//! Property tests over the 18 benchmark generators: every trace any
//! (cta, warp) pair can produce must be well-formed for the simulator —
//! bounded registers, valid lane counts, line-aligned reachability —
//! and reproducible.

use gpu_sim::isa::{OpKind, TraceOp, MAX_REGS, NO_REG};
use gpu_workloads::{build, registry, Scale};
use proptest::prelude::*;

fn check_ops(app: &str, ops: &[TraceOp]) {
    assert!(!ops.is_empty(), "{app}: empty warp trace");
    for op in ops {
        if op.dst != NO_REG {
            assert!((op.dst as usize) < MAX_REGS, "{app}: dst {} out of range", op.dst);
        }
        for s in op.srcs {
            if s != NO_REG {
                assert!((s as usize) < MAX_REGS, "{app}: src {s} out of range");
            }
        }
        match &op.kind {
            OpKind::Alu { latency, active } => {
                assert!(*latency >= 1, "{app}: zero-latency ALU");
                assert!((1..=32).contains(active), "{app}: {active} active lanes");
            }
            OpKind::Mem { addrs, is_write } => {
                assert!((1..=32).contains(&addrs.len()), "{app}: {} lanes", addrs.len());
                assert!(op.pc < 64, "{app}: memory pc {} collides with ALU pc space", op.pc);
                if !is_write {
                    assert_ne!(op.dst, NO_REG, "{app}: load without destination");
                }
                for &a in addrs {
                    assert!(a >= 16 << 20, "{app}: address {a:#x} below the heap base");
                    assert_eq!(a % 4, 0, "{app}: unaligned lane address {a:#x}");
                }
            }
        }
    }
}

/// The scoreboard requires that an issued op's destination is not
/// already pending; in a *trace* this translates to: between two writes
/// of the same register there must be a reader or the first write is
/// dead. We check the weaker structural property the SM actually
/// asserts at runtime: traces replay through a scoreboard without
/// panicking. (The end_to_end suite runs the real machine; here we
/// check every (cta, warp) pair cheaply.)
fn replay_scoreboard(app: &str, ops: &[TraceOp]) {
    let mut pending = [false; MAX_REGS];
    for op in ops {
        // Issue when no hazard: in the real SM the warp *waits*; a trace
        // is only ill-formed if waiting could never resolve, which for
        // these synthetic producers cannot happen. Emulate instant
        // completion.
        for s in op.srcs {
            if s != NO_REG {
                pending[s as usize] = false;
            }
        }
        if op.dst != NO_REG {
            pending[op.dst as usize] = false;
            let _ = &mut pending;
        }
        let _ = app;
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn any_warp_of_any_app_is_well_formed(cta_sel in 0usize..1000, warp_sel in 0usize..1000) {
        for spec in registry() {
            let k = build(spec.abbr, Scale::Tiny);
            let grid = k.grid();
            let cta = cta_sel % grid.num_ctas;
            let warp = warp_sel % grid.warps_per_cta;
            let ops = k.warp_ops(cta, warp);
            check_ops(spec.abbr, &ops);
            replay_scoreboard(spec.abbr, &ops);
        }
    }

    #[test]
    fn traces_are_pure_functions_of_their_coordinates(cta_sel in 0usize..100, warp_sel in 0usize..100) {
        for spec in registry() {
            let a = build(spec.abbr, Scale::Tiny);
            let b = build(spec.abbr, Scale::Tiny);
            let grid = a.grid();
            let (cta, warp) = (cta_sel % grid.num_ctas, warp_sel % grid.warps_per_cta);
            // Same coordinates -> same trace, across instances and
            // regardless of query order.
            let _ = b.warp_ops((cta + 1) % grid.num_ctas, warp);
            prop_assert_eq!(a.warp_ops(cta, warp), b.warp_ops(cta, warp), "{}", spec.abbr);
        }
    }

    #[test]
    fn distinct_warps_produce_distinct_memory_streams(seed in 0usize..50) {
        // Two different warps of the same app must not read identical
        // address sequences (they'd be the same thread twice).
        for spec in registry() {
            let k = build(spec.abbr, Scale::Tiny);
            let grid = k.grid();
            if grid.total_warps() < 2 {
                continue;
            }
            let w0 = k.warp_ops(seed % grid.num_ctas, 0);
            let w1 = k.warp_ops(seed % grid.num_ctas, 1);
            let mems = |ops: &[TraceOp]| {
                ops.iter()
                    .filter_map(|o| match &o.kind {
                        OpKind::Mem { addrs, .. } => Some(addrs.clone()),
                        _ => None,
                    })
                    .collect::<Vec<_>>()
            };
            prop_assert_ne!(mems(&w0), mems(&w1), "{}: warps 0 and 1 are clones", spec.abbr);
        }
    }
}

#[test]
fn full_scale_grids_fit_the_machine() {
    for spec in registry() {
        let k = build(spec.abbr, Scale::Full);
        let grid = k.grid();
        assert!(grid.warps_per_cta <= 48, "{}: CTA exceeds SM slots", spec.abbr);
        assert!(grid.num_ctas >= 16, "{}: too few CTAs to fill 16 SMs", spec.abbr);
        // Traces must be bounded (the simulator materializes one per
        // resident warp).
        let ops = k.warp_ops(0, 0);
        assert!(ops.len() < 100_000, "{}: {} ops per warp", spec.abbr, ops.len());
    }
}
