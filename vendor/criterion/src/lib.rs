//! Offline stand-in for `criterion`: same macro and builder surface,
//! but measurement is plain wall-clock timing with a fixed per-bench
//! time budget and a single reported mean — no statistics, plotting, or
//! saved baselines. Under `cargo test` (the harness passes `--test`)
//! each benchmark body runs exactly once as a smoke test.

#![forbid(unsafe_code)]

use std::fmt::Display;
use std::time::{Duration, Instant};

/// Re-exported opaque value barrier.
pub fn black_box<T>(x: T) -> T {
    std::hint::black_box(x)
}

/// Runs one sample: `iter` executes the routine `iters` times.
pub struct Bencher {
    iters: u64,
    elapsed: Duration,
}

impl Bencher {
    /// Time `routine`, executing it as many times as the current sample
    /// requests.
    pub fn iter<O, R: FnMut() -> O>(&mut self, mut routine: R) {
        let start = Instant::now();
        for _ in 0..self.iters {
            black_box(routine());
        }
        self.elapsed = start.elapsed();
    }
}

/// Identifier for one benchmark within a group.
pub struct BenchmarkId {
    id: String,
}

impl BenchmarkId {
    /// Id from a function name plus parameter.
    pub fn new<S: Into<String>, P: Display>(function: S, parameter: P) -> Self {
        BenchmarkId { id: format!("{}/{}", function.into(), parameter) }
    }

    /// Id from the parameter alone.
    pub fn from_parameter<P: Display>(parameter: P) -> Self {
        BenchmarkId { id: parameter.to_string() }
    }
}

/// Top-level benchmark driver.
pub struct Criterion {
    test_mode: bool,
    budget: Duration,
}

impl Default for Criterion {
    fn default() -> Self {
        // Cargo invokes bench targets with `--test` under `cargo test`;
        // run each body once there instead of timing it.
        let test_mode = std::env::args().any(|a| a == "--test");
        Criterion { test_mode, budget: Duration::from_millis(60) }
    }
}

impl Criterion {
    /// Accepted for compatibility; the stub's sampling is time-boxed,
    /// so the count only scales the budget coarsely.
    pub fn sample_size(mut self, n: usize) -> Self {
        self.budget = Duration::from_millis(20) * (n.clamp(10, 100) as u32) / 10;
        self
    }

    /// Benchmark a standalone function.
    pub fn bench_function<F>(&mut self, name: &str, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        self.run_one(name, &mut f);
        self
    }

    /// Open a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: &str) -> BenchmarkGroup<'_> {
        BenchmarkGroup { criterion: self, name: name.to_string() }
    }

    fn run_one<F: FnMut(&mut Bencher)>(&mut self, name: &str, f: &mut F) {
        let mut b = Bencher { iters: 1, elapsed: Duration::ZERO };
        f(&mut b); // warm-up; also the only run in test mode
        if self.test_mode {
            println!("bench {name}: ok (test mode, 1 iteration)");
            return;
        }
        let mut total = b.elapsed;
        let mut iters = 1u64;
        while total < self.budget && b.elapsed < self.budget {
            // Grow the per-sample batch until one sample fills ~1/4 of
            // the budget, then keep sampling until the budget is spent.
            if b.elapsed * 4 < self.budget {
                b.iters = (b.iters * 2).min(1 << 20);
            }
            f(&mut b);
            total += b.elapsed;
            iters += b.iters;
        }
        let ns = total.as_nanos() as f64 / iters as f64;
        println!("bench {name}: {ns:.1} ns/iter ({iters} iterations)");
    }
}

/// Group of benchmarks sharing a name prefix.
pub struct BenchmarkGroup<'a> {
    criterion: &'a mut Criterion,
    name: String,
}

impl BenchmarkGroup<'_> {
    /// Accepted for compatibility (see [`Criterion::sample_size`]).
    pub fn sample_size(&mut self, n: usize) -> &mut Self {
        self.criterion.budget = Duration::from_millis(20) * (n.clamp(10, 100) as u32) / 10;
        self
    }

    /// Benchmark one parameterised case.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let name = format!("{}/{}", self.name, id.id);
        self.criterion.run_one(&name, &mut |b: &mut Bencher| f(b, input));
        self
    }

    /// End the group (no-op; exists for API compatibility).
    pub fn finish(self) {}
}

/// Collect benchmark functions into a runnable group function.
#[macro_export]
macro_rules! criterion_group {
    (name = $name:ident; config = $config:expr; targets = $($target:path),+ $(,)?) => {
        pub fn $name() {
            let mut criterion = $config;
            $($target(&mut criterion);)+
        }
    };
    ($name:ident, $($target:path),+ $(,)?) => {
        $crate::criterion_group!(
            name = $name;
            config = $crate::Criterion::default();
            targets = $($target),+
        );
    };
}

/// Generate `main` running the given groups.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_function_runs_body() {
        let mut c = Criterion { test_mode: true, budget: Duration::from_millis(1) };
        let mut ran = 0u32;
        c.bench_function("probe", |b| b.iter(|| ran += 1));
        assert!(ran >= 1);
    }

    #[test]
    fn group_passes_input_through() {
        let mut c = Criterion { test_mode: true, budget: Duration::from_millis(1) };
        let mut seen = 0u64;
        {
            let mut g = c.benchmark_group("g");
            g.sample_size(10);
            g.bench_with_input(BenchmarkId::from_parameter("x"), &41u64, |b, &v| {
                b.iter(|| seen = v + 1)
            });
            g.finish();
        }
        assert_eq!(seen, 42);
    }
}
