//! Deterministic stand-in for the `rand 0.8` API surface the workloads
//! use: `Rng::{gen_range, gen_bool}`, `SeedableRng::seed_from_u64` and
//! `rngs::StdRng`. The generator is SplitMix64 — statistically fine for
//! synthetic address streams and, crucially, identical on every run and
//! platform. It is NOT the upstream ChaCha12 `StdRng`, so absolute
//! streams differ from real `rand`.

#![forbid(unsafe_code)]

/// Construct a generator from a seed.
pub trait SeedableRng: Sized {
    /// Build from a 64-bit seed.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Integer types drawable uniformly from a bounded range. The
/// upstream split between `SampleUniform` (the element type) and
/// `SampleRange` (the range form) is kept so type inference works the
/// same way: `lo + rng.gen_range(0..n)` unifies the literal with `lo`.
pub trait SampleUniform: Sized {
    /// Draw from `[low, high)` using the supplied 64 bits of entropy.
    fn sample_from(low: Self, high: Self, next: u64) -> Self;
}

/// Range forms accepted by [`Rng::gen_range`].
pub trait SampleRange<T> {
    /// Draw one value using the supplied 64-bit entropy source.
    fn sample(self, next: u64) -> T;
}

impl<T: SampleUniform> SampleRange<T> for core::ops::Range<T> {
    fn sample(self, next: u64) -> T {
        T::sample_from(self.start, self.end, next)
    }
}

macro_rules! unsigned_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_from(low: $t, high: $t, next: u64) -> $t {
                assert!(low < high, "gen_range: empty range");
                let width = (high - low) as u128;
                low + (next as u128 % width) as $t
            }
        }
    )*};
}
unsigned_uniform!(u8, u16, u32, u64, usize);

macro_rules! signed_uniform {
    ($($t:ty),*) => {$(
        impl SampleUniform for $t {
            fn sample_from(low: $t, high: $t, next: u64) -> $t {
                assert!(low < high, "gen_range: empty range");
                let width = (high as i128 - low as i128) as u128;
                (low as i128 + (next as u128 % width) as i128) as $t
            }
        }
    )*};
}
signed_uniform!(i8, i16, i32, i64, isize);

/// Types [`Rng::gen`] can produce (upstream: the `Standard`
/// distribution).
pub trait GenValue: Sized {
    /// Build a uniformly distributed value from 64 bits of entropy.
    fn from_bits(next: u64) -> Self;
}

impl GenValue for u64 {
    fn from_bits(next: u64) -> u64 {
        next
    }
}

impl GenValue for u32 {
    fn from_bits(next: u64) -> u32 {
        (next >> 32) as u32
    }
}

impl GenValue for bool {
    fn from_bits(next: u64) -> bool {
        next >> 63 == 1
    }
}

/// The subset of `rand::Rng` the workloads rely on.
pub trait Rng {
    /// Next raw 64 bits.
    fn next_u64(&mut self) -> u64;

    /// Uniform draw over a type's whole domain.
    fn gen<T: GenValue>(&mut self) -> T {
        T::from_bits(self.next_u64())
    }

    /// Uniform draw from a half-open integer range.
    fn gen_range<T: SampleUniform, R: SampleRange<T>>(&mut self, range: R) -> T {
        range.sample(self.next_u64())
    }

    /// Bernoulli draw with probability `p` of `true`.
    fn gen_bool(&mut self, p: f64) -> bool {
        assert!((0.0..=1.0).contains(&p), "gen_bool: p out of range");
        // 53 high bits -> uniform in [0, 1).
        ((self.next_u64() >> 11) as f64) * (1.0 / (1u64 << 53) as f64) < p
    }
}

impl<T: Rng + ?Sized> Rng for &mut T {
    fn next_u64(&mut self) -> u64 {
        (**self).next_u64()
    }
}

/// Named generators, mirroring `rand::rngs`.
pub mod rngs {
    /// SplitMix64 generator (deterministic stand-in for `StdRng`).
    #[derive(Clone, Debug)]
    pub struct StdRng {
        state: u64,
    }

    impl super::SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            StdRng { state: seed.wrapping_add(0x9e37_79b9_7f4a_7c15) }
        }
    }

    impl super::Rng for StdRng {
        fn next_u64(&mut self) -> u64 {
            // SplitMix64 (Steele, Lea & Flood).
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(7);
        let mut b = StdRng::seed_from_u64(7);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(8);
        assert_ne!(StdRng::seed_from_u64(7).next_u64(), c.next_u64());
    }

    #[test]
    fn ranges_stay_in_bounds() {
        let mut r = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let v = r.gen_range(10u64..20);
            assert!((10..20).contains(&v));
            let s = r.gen_range(-5i64..5);
            assert!((-5..5).contains(&s));
            let u = r.gen_range(0usize..3);
            assert!(u < 3);
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut r = StdRng::seed_from_u64(2);
        assert!(!r.gen_bool(0.0));
        assert!(r.gen_bool(1.0));
        let hits = (0..10_000).filter(|_| r.gen_bool(0.3)).count();
        assert!((2_000..4_000).contains(&hits), "p=0.3 gave {hits}/10000");
    }
}
