//! Minimal offline stand-in for `proptest`: deterministic random input
//! generation with the same surface syntax (`proptest!`, `prop_oneof!`,
//! `prop_assert*`, `Strategy::prop_map`, `any`, `Just`,
//! `prop::collection::vec`). Differences from upstream:
//!
//! * no shrinking — a failing case is reported verbatim (inputs are
//!   echoed to stderr before the panic is re-raised);
//! * the case seed is a hash of the test's module path and name, so
//!   runs are reproducible but unrelated to upstream's streams;
//! * only the integer/bool strategies this workspace uses exist.

#![forbid(unsafe_code)]

use core::marker::PhantomData;

pub mod test_runner {
    /// Deterministic SplitMix64 generator used for case generation.
    #[derive(Clone, Debug)]
    pub struct TestRng {
        state: u64,
    }

    impl TestRng {
        /// Seed from a stable hash of the test's full name so each test
        /// gets its own reproducible stream.
        pub fn for_test(name: &str) -> Self {
            // FNV-1a, 64-bit.
            let mut h = 0xcbf2_9ce4_8422_2325u64;
            for b in name.bytes() {
                h ^= b as u64;
                h = h.wrapping_mul(0x0000_0100_0000_01b3);
            }
            TestRng { state: h }
        }

        /// Next raw 64 bits (SplitMix64).
        pub fn next_u64(&mut self) -> u64 {
            self.state = self.state.wrapping_add(0x9e37_79b9_7f4a_7c15);
            let mut z = self.state;
            z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
            z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
            z ^ (z >> 31)
        }
    }

    /// Runner configuration. Only `cases` is honoured.
    #[derive(Clone, Debug)]
    pub struct Config {
        /// Number of generated cases per test.
        pub cases: u32,
    }

    impl Config {
        /// Configuration running `cases` generated inputs per test.
        pub fn with_cases(cases: u32) -> Self {
            Config { cases }
        }
    }

    impl Default for Config {
        fn default() -> Self {
            Config { cases: 32 }
        }
    }
}

pub use test_runner::{Config as ProptestConfig, TestRng};

/// A value generator. Upstream proptest separates strategies from value
/// trees (for shrinking); this stub only generates.
pub trait Strategy {
    /// The type of generated values.
    type Value;

    /// Draw one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Map generated values through `f`.
    fn prop_map<O, F>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
        F: Fn(Self::Value) -> O,
    {
        Map { source: self, f }
    }

    /// Type-erase for heterogeneous collections (`prop_oneof!`).
    fn boxed(self) -> BoxedStrategy<Self::Value>
    where
        Self: Sized + 'static,
    {
        Box::new(self)
    }
}

/// A boxed, type-erased strategy.
pub type BoxedStrategy<T> = Box<dyn Strategy<Value = T>>;

impl<S: Strategy + ?Sized> Strategy for Box<S> {
    type Value = S::Value;
    fn generate(&self, rng: &mut TestRng) -> S::Value {
        (**self).generate(rng)
    }
}

/// Output of [`Strategy::prop_map`].
pub struct Map<S, F> {
    source: S,
    f: F,
}

impl<S: Strategy, O, F: Fn(S::Value) -> O> Strategy for Map<S, F> {
    type Value = O;
    fn generate(&self, rng: &mut TestRng) -> O {
        (self.f)(self.source.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Clone, Debug)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;
    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

/// Uniform choice between same-typed strategies (`prop_oneof!`).
pub struct Union<T> {
    arms: Vec<BoxedStrategy<T>>,
}

impl<T> Union<T> {
    /// Build from the alternatives; panics if empty.
    pub fn new(arms: Vec<BoxedStrategy<T>>) -> Self {
        assert!(!arms.is_empty(), "prop_oneof! needs at least one arm");
        Union { arms }
    }
}

impl<T> Strategy for Union<T> {
    type Value = T;
    fn generate(&self, rng: &mut TestRng) -> T {
        let idx = (rng.next_u64() % self.arms.len() as u64) as usize;
        self.arms[idx].generate(rng)
    }
}

/// Types with a canonical "any value" strategy.
pub trait Arbitrary: Sized {
    /// Draw an unconstrained value.
    fn arbitrary(rng: &mut TestRng) -> Self;
}

impl Arbitrary for bool {
    fn arbitrary(rng: &mut TestRng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

macro_rules! int_arbitrary {
    ($($t:ty),*) => {$(
        impl Arbitrary for $t {
            fn arbitrary(rng: &mut TestRng) -> $t {
                rng.next_u64() as $t
            }
        }
    )*};
}
int_arbitrary!(u8, u16, u32, u64, usize, i8, i16, i32, i64, isize);

/// Strategy for any value of `A` (see [`any`]).
pub struct Any<A>(PhantomData<A>);

impl<A: Arbitrary> Strategy for Any<A> {
    type Value = A;
    fn generate(&self, rng: &mut TestRng) -> A {
        A::arbitrary(rng)
    }
}

/// The full range of `A` as a strategy.
pub fn any<A: Arbitrary>() -> Any<A> {
    Any(PhantomData)
}

macro_rules! unsigned_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end - self.start) as u128;
                self.start + (rng.next_u64() as u128 % width) as $t
            }
        }
    )*};
}
unsigned_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! signed_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "empty range strategy");
                let width = (self.end as i128 - self.start as i128) as u128;
                (self.start as i128 + (rng.next_u64() as u128 % width) as i128) as $t
            }
        }
    )*};
}
signed_range_strategy!(i8, i16, i32, i64, isize);

macro_rules! tuple_strategy {
    ($($s:ident . $idx:tt),+) => {
        impl<$($s: Strategy),+> Strategy for ($($s,)+) {
            type Value = ($($s::Value,)+);
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                ($(self.$idx.generate(rng),)+)
            }
        }
    };
}
tuple_strategy!(A.0);
tuple_strategy!(A.0, B.1);
tuple_strategy!(A.0, B.1, C.2);
tuple_strategy!(A.0, B.1, C.2, D.3);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4);
tuple_strategy!(A.0, B.1, C.2, D.3, E.4, F.5);

pub mod collection {
    //! Collection strategies (`prop::collection::vec`).

    use super::{Strategy, TestRng};

    /// Element-count bound for collection strategies (half-open).
    #[derive(Clone, Copy, Debug)]
    pub struct SizeRange {
        min: usize,
        max: usize,
    }

    impl From<core::ops::Range<usize>> for SizeRange {
        fn from(r: core::ops::Range<usize>) -> Self {
            assert!(r.start < r.end, "empty size range");
            SizeRange { min: r.start, max: r.end }
        }
    }

    impl From<usize> for SizeRange {
        fn from(n: usize) -> Self {
            SizeRange { min: n, max: n + 1 }
        }
    }

    /// `Vec` strategy; see [`vec`].
    pub struct VecStrategy<S> {
        element: S,
        size: SizeRange,
    }

    impl<S: Strategy> Strategy for VecStrategy<S> {
        type Value = Vec<S::Value>;
        fn generate(&self, rng: &mut TestRng) -> Vec<S::Value> {
            let span = (self.size.max - self.size.min) as u64;
            let len = self.size.min + (rng.next_u64() % span) as usize;
            (0..len).map(|_| self.element.generate(rng)).collect()
        }
    }

    /// Vectors of `element` values with length drawn from `size`.
    pub fn vec<S: Strategy>(element: S, size: impl Into<SizeRange>) -> VecStrategy<S> {
        VecStrategy { element, size: size.into() }
    }
}

pub mod prelude {
    //! The glob-import surface, mirroring `proptest::prelude`.

    pub use crate as prop;
    pub use crate::{any, Arbitrary, BoxedStrategy, Just, ProptestConfig, Strategy};
    pub use crate::{prop_assert, prop_assert_eq, prop_assert_ne, prop_oneof, proptest};
}

/// Define property tests. Supports the `#![proptest_config(..)]` header
/// and any number of `#[test] fn name(arg in strategy, ..) { .. }`
/// items. Each test runs `cases` generated inputs; on panic the inputs
/// are printed and the panic re-raised (no shrinking).
#[macro_export]
macro_rules! proptest {
    (#![proptest_config($cfg:expr)] $($rest:tt)*) => {
        $crate::__proptest_tests!($cfg; $($rest)*);
    };
    ($($rest:tt)*) => {
        $crate::__proptest_tests!($crate::ProptestConfig::default(); $($rest)*);
    };
}

#[doc(hidden)]
#[macro_export]
macro_rules! __proptest_tests {
    ($cfg:expr;) => {};
    ($cfg:expr;
     $(#[$meta:meta])*
     fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block
     $($rest:tt)*
    ) => {
        $(#[$meta])*
        fn $name() {
            let __cfg: $crate::ProptestConfig = $cfg;
            let mut __rng = $crate::test_runner::TestRng::for_test(
                concat!(module_path!(), "::", stringify!($name)),
            );
            for __case in 0..__cfg.cases {
                $(let $arg = $crate::Strategy::generate(&($strat), &mut __rng);)+
                let __outcome = ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(|| {
                    $(let $arg = ::std::clone::Clone::clone(&$arg);)+
                    $body
                }));
                if let ::std::result::Result::Err(__payload) = __outcome {
                    ::std::eprintln!(
                        "proptest (vendored stub): `{}` failed at case {}/{} with inputs:",
                        stringify!($name),
                        __case + 1,
                        __cfg.cases,
                    );
                    $(::std::eprintln!("    {} = {:?}", stringify!($arg), $arg);)+
                    ::std::panic::resume_unwind(__payload);
                }
            }
        }
        $crate::__proptest_tests!($cfg; $($rest)*);
    };
}

/// Uniform choice between strategies yielding the same type.
#[macro_export]
macro_rules! prop_oneof {
    ($($arm:expr),+ $(,)?) => {
        $crate::Union::new(vec![$($crate::Strategy::boxed($arm)),+])
    };
}

/// `assert!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert {
    ($($t:tt)*) => { assert!($($t)*) };
}

/// `assert_eq!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($t:tt)*) => { assert_eq!($($t)*) };
}

/// `assert_ne!` under a proptest-compatible name.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($t:tt)*) => { assert_ne!($($t)*) };
}

#[cfg(test)]
mod tests {
    use crate::prelude::*;

    #[derive(Clone, Debug, PartialEq)]
    enum Shape {
        Dot,
        Line(u16),
        Pair(u8, bool),
    }

    fn shape_strategy() -> impl Strategy<Value = Shape> {
        prop_oneof![
            Just(Shape::Dot),
            (0u16..600).prop_map(Shape::Line),
            (any::<u8>(), any::<bool>()).prop_map(|(a, b)| Shape::Pair(a, b)),
        ]
    }

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(40))]

        #[test]
        fn ranges_and_vecs_in_bounds(
            xs in prop::collection::vec((0usize..8, 0u64..64, any::<u8>()), 1..50),
            signed in -20i64..-3,
        ) {
            prop_assert!(!xs.is_empty() && xs.len() < 50);
            for &(a, b, _) in &xs {
                prop_assert!(a < 8);
                prop_assert!(b < 64);
            }
            prop_assert!((-20..-3).contains(&signed));
        }

        #[test]
        fn oneof_covers_arms(shapes in prop::collection::vec(shape_strategy(), 64..65)) {
            // 64 draws from 3 uniform arms: each arm should appear.
            prop_assert!(shapes.contains(&Shape::Dot));
            prop_assert!(shapes.iter().any(|s| matches!(s, Shape::Line(_))));
            prop_assert!(shapes.iter().any(|s| matches!(s, Shape::Pair(..))));
        }
    }

    #[test]
    fn generation_is_deterministic_per_name() {
        let strat = shape_strategy();
        let mut a = TestRng::for_test("same::name");
        let mut b = TestRng::for_test("same::name");
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }

    use crate::test_runner::TestRng;
}
