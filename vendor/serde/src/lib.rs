//! Marker-trait stand-in for `serde`. Blanket impls make every type
//! `Serialize`/`Deserialize`, matching the no-op derives in the
//! sibling `serde_derive` stub. Nothing in the workspace actually
//! serializes; the traits exist so `#[derive(Serialize, Deserialize)]`
//! and `T: Serialize` bounds keep compiling offline.

/// Marker for "this type could be serialized".
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker for "this type could be deserialized".
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

#[cfg(feature = "derive")]
pub use serde_derive::{Deserialize, Serialize};
