//! `parking_lot::Mutex` stand-in backed by `std::sync::Mutex`. The
//! parking_lot API returns guards directly (no `Result`); poisoning is
//! recovered transparently, matching parking_lot's panic-tolerant
//! behaviour closely enough for the profiler sinks that use it.

#![forbid(unsafe_code)]

/// Guard type returned by [`Mutex::lock`].
pub type MutexGuard<'a, T> = std::sync::MutexGuard<'a, T>;

/// A mutex whose `lock()` never fails.
#[derive(Debug, Default)]
pub struct Mutex<T: ?Sized>(std::sync::Mutex<T>);

impl<T> Mutex<T> {
    /// Wrap a value.
    pub fn new(value: T) -> Self {
        Mutex(std::sync::Mutex::new(value))
    }

    /// Consume the mutex, returning the inner value.
    pub fn into_inner(self) -> T {
        self.0.into_inner().unwrap_or_else(|p| p.into_inner())
    }
}

impl<T: ?Sized> Mutex<T> {
    /// Acquire the lock, recovering from poisoning.
    pub fn lock(&self) -> MutexGuard<'_, T> {
        self.0.lock().unwrap_or_else(|p| p.into_inner())
    }
}

#[cfg(test)]
mod tests {
    use super::Mutex;

    #[test]
    fn lock_and_into_inner() {
        let m = Mutex::new(3);
        *m.lock() += 4;
        assert_eq!(m.into_inner(), 7);
    }

    #[test]
    fn survives_poisoning() {
        let m = std::sync::Arc::new(Mutex::new(1));
        let m2 = m.clone();
        let _ = std::thread::spawn(move || {
            let _g = m2.lock();
            panic!("poison");
        })
        .join();
        assert_eq!(*m.lock(), 1, "lock after a panicking holder still works");
    }
}
