//! No-op `Serialize`/`Deserialize` derives. The workspace never
//! serializes anything; the derives only have to compile. The matching
//! `serde` stub provides blanket trait impls, so emitting no code here
//! is sound.

use proc_macro::TokenStream;

/// Accepts (and ignores) `#[derive(Serialize)]` and `#[serde(...)]`.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// Accepts (and ignores) `#[derive(Deserialize)]` and `#[serde(...)]`.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
